//! `SimVfs`: a deterministic, in-memory [`crate::vfs::Vfs`] that
//! simulates crashes and power loss.
//!
//! Every file is modelled as two images plus a log:
//!
//! * the **durable** image — what the platter would hold after a power
//!   cut: the state as of the file's last `sync`;
//! * the **current** image — what the OS page cache holds: every write
//!   applied in order (reads are served from here);
//! * the **pending log** — writes and truncations issued since the
//!   last `sync`, each stamped with a global sequence number.
//!
//! A `sync` promotes the current image to durable and clears the log.
//!
//! ## Crash injection
//!
//! [`SimVfs::arm`] plants a [`CrashPlan`]: mutating operations (writes,
//! truncations, syncs) are counted, and the Nth one fails with a
//! "simulated crash" I/O error — optionally after applying a torn
//! prefix of the final write. From then on *every* operation errors, so
//! the workload unwinds exactly as it would when the process dies.
//!
//! [`SimVfs::power_cut`] then decides what survived, per the real
//! power-loss model: everything synced is kept, and each unsynced
//! pending operation is independently kept or dropped by a
//! [`PowerCut`] policy — all of them (a pure process crash: the page
//! cache survived), none of them, or a seed-deterministic subset
//! (drives give no ordering guarantees between barriers). The same
//! seed always keeps the same subset, so a failing crash point
//! reproduces exactly.
//!
//! File *creation* is modelled as immediately durable (journalled file
//! systems persist the directory entry with the first fsync of the
//! file; the store syncs both files at creation in every durable sync
//! mode).

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::vfs::{OpenMode, Vfs, VfsFile};

/// When and how to interrupt the operation stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// The 1-based index (among mutating operations counted since
    /// [`SimVfs::arm`]) of the operation that crashes.
    pub at_op: u64,
    /// What happens to the crashing operation itself:
    /// * `None` — it is dropped entirely (the crash lands just before
    ///   the write reaches the cache);
    /// * `Some(num)` — a write is torn: only the first
    ///   `len * num / 8` bytes (at least one) reach the cache. Syncs
    ///   and truncations are always dropped.
    pub torn_eighths: Option<u8>,
}

/// What survives a power cut, applied to each unsynced pending
/// operation independently (synced state always survives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerCut {
    /// Keep every pending operation: a process crash — the OS page
    /// cache (and therefore every completed write) survived.
    KeepAll,
    /// Drop every pending operation: the drive persisted nothing past
    /// the last sync barrier.
    DropUnsynced,
    /// Keep a seed-deterministic subset: each pending operation is
    /// kept iff `splitmix64(seed ^ op_seq)` is even. Models a drive
    /// persisting cached writes in arbitrary order.
    KeepSeeded(u64),
}

#[derive(Debug, Clone)]
enum PendingKind {
    Write { offset: u64, data: Vec<u8> },
    SetLen(u64),
}

#[derive(Debug, Clone)]
struct PendingOp {
    seq: u64,
    kind: PendingKind,
}

#[derive(Debug, Default)]
struct SimFile {
    durable: Vec<u8>,
    current: Vec<u8>,
    pending: Vec<PendingOp>,
}

impl SimFile {
    fn apply(image: &mut Vec<u8>, kind: &PendingKind) {
        match kind {
            PendingKind::Write { offset, data } => {
                let end = *offset as usize + data.len();
                if image.len() < end {
                    image.resize(end, 0);
                }
                image[*offset as usize..end].copy_from_slice(data);
            }
            PendingKind::SetLen(len) => image.resize(*len as usize, 0),
        }
    }
}

#[derive(Debug, Default)]
struct SimState {
    files: BTreeMap<PathBuf, SimFile>,
    /// Mutating operations observed since the last [`SimVfs::arm`] /
    /// [`SimVfs::power_cut`].
    ops: u64,
    plan: Option<CrashPlan>,
    crashed: bool,
    next_seq: u64,
    /// Lifetime counters (never reset): every write / sync / set_len
    /// the store issued through this VFS.
    total_writes: u64,
    total_syncs: u64,
    total_set_lens: u64,
    /// Artificial latency per `sync`, slept *outside* the state lock so
    /// concurrent writes proceed during a slow sync — used to widen the
    /// group-commit batching window in tests.
    sync_delay: std::time::Duration,
}

/// The simulated file system. Cheap to clone (shared state); pass
/// [`SimVfs::handle`] into
/// [`StoreOptions::vfs`](crate::StoreOptions::vfs).
#[derive(Clone, Default)]
pub struct SimVfs {
    state: Arc<Mutex<SimState>>,
}

fn crash_error() -> io::Error {
    io::Error::other("simulated crash: I/O rejected past the injection point")
}

/// True when `err` is the [`SimVfs`] injected-crash error (possibly
/// wrapped in another error's message).
pub fn is_simulated_crash(msg: &str) -> bool {
    msg.contains("simulated crash")
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl SimVfs {
    /// A fresh, empty simulated file system with no crash armed.
    pub fn new() -> SimVfs {
        SimVfs::default()
    }

    /// This VFS as the trait object [`StoreOptions`](crate::StoreOptions)
    /// wants.
    pub fn handle(&self) -> Arc<dyn Vfs> {
        Arc::new(self.clone())
    }

    /// Mutating operations (writes, truncations, syncs) observed since
    /// the last [`SimVfs::arm`] or [`SimVfs::power_cut`]. Run a
    /// workload once un-crashed to learn the number of injection
    /// points, then loop `at_op` over `1..=ops()`.
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// Lifetime `(writes, syncs, set_lens)` counters.
    pub fn recorded(&self) -> (u64, u64, u64) {
        let s = self.state.lock();
        (s.total_writes, s.total_syncs, s.total_set_lens)
    }

    /// Makes every subsequent `sync` take at least `delay` of wall
    /// time (slept before the sync applies, without holding the state
    /// lock). Models a slow disk so tests can observe several
    /// committers sharing one group fsync.
    pub fn set_sync_delay(&self, delay: std::time::Duration) {
        self.state.lock().sync_delay = delay;
    }

    /// Arms a crash and resets the operation counter.
    pub fn arm(&self, plan: CrashPlan) {
        assert!(plan.at_op >= 1, "operations are 1-indexed");
        let mut s = self.state.lock();
        s.ops = 0;
        s.plan = Some(plan);
        s.crashed = false;
    }

    /// Removes any armed plan without touching file state; the
    /// operation counter keeps running.
    pub fn disarm(&self) {
        let mut s = self.state.lock();
        s.plan = None;
        s.crashed = false;
    }

    /// Whether an armed crash has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Simulates the power cut and restart: for every file, the synced
    /// image survives and each unsynced pending operation is kept or
    /// dropped per `policy` (kept operations re-apply in their original
    /// order). Clears the crash state so the surviving files can be
    /// reopened through this same VFS.
    pub fn power_cut(&self, policy: PowerCut) {
        let mut s = self.state.lock();
        for file in s.files.values_mut() {
            let mut image = std::mem::take(&mut file.durable);
            for op in &file.pending {
                let keep = match policy {
                    PowerCut::KeepAll => true,
                    PowerCut::DropUnsynced => false,
                    PowerCut::KeepSeeded(seed) => splitmix64(seed ^ op.seq) & 1 == 0,
                };
                if keep {
                    SimFile::apply(&mut image, &op.kind);
                }
            }
            file.pending.clear();
            file.current = image.clone();
            file.durable = image;
        }
        s.ops = 0;
        s.plan = None;
        s.crashed = false;
    }

    /// The current (page-cache) length of `path`, if it exists — for
    /// test assertions.
    pub fn file_len(&self, path: &Path) -> Option<u64> {
        self.state
            .lock()
            .files
            .get(path)
            .map(|f| f.current.len() as u64)
    }

    /// Runs one mutating operation against `path` under the crash
    /// plan. Returns the crash error at the injection point and for
    /// every operation after it.
    fn mutate(&self, path: &Path, kind: PendingKind, is_sync: bool) -> io::Result<()> {
        let mut s = self.state.lock();
        if s.crashed {
            return Err(crash_error());
        }
        s.ops += 1;
        match (&kind, is_sync) {
            (_, true) => s.total_syncs += 1,
            (PendingKind::Write { .. }, _) => s.total_writes += 1,
            (PendingKind::SetLen(_), _) => s.total_set_lens += 1,
        }
        let crash_now = s.plan.is_some_and(|p| s.ops >= p.at_op);
        if crash_now {
            s.crashed = true;
            // A torn final write applies a prefix; everything else at
            // the injection point is simply lost.
            if let (PendingKind::Write { offset, data }, Some(eighths), false) =
                (&kind, s.plan.and_then(|p| p.torn_eighths), is_sync)
            {
                let keep = (data.len() * usize::from(eighths.min(8)) / 8).max(1);
                let torn = PendingKind::Write {
                    offset: *offset,
                    data: data[..keep].to_vec(),
                };
                let seq = s.next_seq;
                s.next_seq += 1;
                let file = s.files.get_mut(path).ok_or_else(crash_error)?;
                SimFile::apply(&mut file.current, &torn);
                file.pending.push(PendingOp { seq, kind: torn });
            }
            return Err(crash_error());
        }
        let seq = s.next_seq;
        s.next_seq += 1;
        let file = s
            .files
            .get_mut(path)
            .ok_or_else(|| io::Error::other("simulated file vanished"))?;
        if is_sync {
            file.durable = file.current.clone();
            file.pending.clear();
        } else {
            SimFile::apply(&mut file.current, &kind);
            file.pending.push(PendingOp { seq, kind });
        }
        Ok(())
    }
}

impl std::fmt::Debug for SimVfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock();
        f.debug_struct("SimVfs")
            .field("files", &s.files.len())
            .field("ops", &s.ops)
            .field("crashed", &s.crashed)
            .finish()
    }
}

impl Vfs for SimVfs {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn VfsFile>> {
        let mut s = self.state.lock();
        if s.crashed {
            return Err(crash_error());
        }
        let exists = s.files.contains_key(path);
        match mode {
            OpenMode::Open if !exists => {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("simulated file {} not found", path.display()),
                ));
            }
            OpenMode::CreateNew if exists => {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!("simulated file {} already exists", path.display()),
                ));
            }
            OpenMode::CreateTruncate => {
                // Creation/truncation is modelled as immediately
                // durable (see module docs).
                s.files.insert(path.to_owned(), SimFile::default());
            }
            OpenMode::CreateNew => {
                s.files.insert(path.to_owned(), SimFile::default());
            }
            OpenMode::Open => {}
        }
        Ok(Box::new(SimFileHandle {
            vfs: self.clone(),
            path: path.to_owned(),
        }))
    }

    fn exists(&self, path: &Path) -> bool {
        self.state.lock().files.contains_key(path)
    }
}

struct SimFileHandle {
    vfs: SimVfs,
    path: PathBuf,
}

impl VfsFile for SimFileHandle {
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        let s = self.vfs.state.lock();
        if s.crashed {
            return Err(crash_error());
        }
        let file = s
            .files
            .get(&self.path)
            .ok_or_else(|| io::Error::other("simulated file vanished"))?;
        let end = offset as usize + buf.len();
        if end > file.current.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "simulated read past end of file",
            ));
        }
        buf.copy_from_slice(&file.current[offset as usize..end]);
        Ok(())
    }

    fn write_all_at(&self, buf: &[u8], offset: u64) -> io::Result<()> {
        self.vfs.mutate(
            &self.path,
            PendingKind::Write {
                offset,
                data: buf.to_vec(),
            },
            false,
        )
    }

    fn sync(&self) -> io::Result<()> {
        let delay = self.vfs.state.lock().sync_delay;
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        self.vfs.mutate(&self.path, PendingKind::SetLen(0), true)
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.vfs.mutate(&self.path, PendingKind::SetLen(len), false)
    }

    fn len(&self) -> io::Result<u64> {
        let s = self.vfs.state.lock();
        if s.crashed {
            return Err(crash_error());
        }
        s.files
            .get(&self.path)
            .map(|f| f.current.len() as u64)
            .ok_or_else(|| io::Error::other("simulated file vanished"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(f: &dyn VfsFile, b: &[u8], off: u64) {
        f.write_all_at(b, off).unwrap();
    }

    #[test]
    fn durable_vs_pending_and_power_cut() {
        let sim = SimVfs::new();
        let p = Path::new("/x");
        let f = sim.open(p, OpenMode::CreateNew).unwrap();
        write(&*f, b"aaaa", 0);
        f.sync().unwrap();
        write(&*f, b"bb", 1); // pending
                              // The cache view sees the unsynced write...
        let mut buf = [0u8; 4];
        f.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"abba");
        // ...but a power cut that drops unsynced writes does not.
        sim.power_cut(PowerCut::DropUnsynced);
        f.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"aaaa");
    }

    #[test]
    fn crash_at_op_is_deterministic() {
        let run = |at_op: u64| -> (u64, Vec<u8>) {
            let sim = SimVfs::new();
            let p = Path::new("/x");
            let f = sim.open(p, OpenMode::CreateNew).unwrap();
            sim.arm(CrashPlan {
                at_op,
                torn_eighths: None,
            });
            let mut completed = 0u64;
            for i in 0..10u8 {
                if f.write_all_at(&[i; 4], u64::from(i) * 4).is_err() {
                    break;
                }
                completed += 1;
                if i % 3 == 2 && f.sync().is_err() {
                    break;
                }
            }
            sim.power_cut(PowerCut::KeepAll);
            let len = sim.file_len(p).unwrap();
            let mut img = vec![0u8; len as usize];
            f.read_exact_at(&mut img, 0).unwrap();
            (completed, img)
        };
        let (a1, img1) = run(5);
        let (a2, img2) = run(5);
        assert_eq!(a1, a2);
        assert_eq!(img1, img2, "same plan, same surviving bytes");
        let (b1, _) = run(7);
        assert!(b1 > a1, "later crash point admits more writes");
    }

    #[test]
    fn torn_write_keeps_a_prefix() {
        let sim = SimVfs::new();
        let p = Path::new("/x");
        let f = sim.open(p, OpenMode::CreateNew).unwrap();
        sim.arm(CrashPlan {
            at_op: 1,
            torn_eighths: Some(4),
        });
        assert!(f.write_all_at(&[7u8; 8], 0).is_err());
        sim.power_cut(PowerCut::KeepAll);
        assert_eq!(sim.file_len(p), Some(4), "half the write survived");
        // Everything after the crash errors until the power cut.
        let sim2 = SimVfs::new();
        let f2 = sim2.open(p, OpenMode::CreateNew).unwrap();
        sim2.arm(CrashPlan {
            at_op: 1,
            torn_eighths: None,
        });
        assert!(f2.write_all_at(&[7u8; 8], 0).is_err());
        assert!(f2.sync().is_err());
        let mut b = [0u8; 1];
        assert!(f2.read_exact_at(&mut b, 0).is_err());
    }

    #[test]
    fn seeded_subset_is_reproducible() {
        let survivors = |seed: u64| -> Vec<u8> {
            let sim = SimVfs::new();
            let p = Path::new("/x");
            let f = sim.open(p, OpenMode::CreateNew).unwrap();
            f.write_all_at(&[0u8; 16], 0).unwrap();
            f.sync().unwrap();
            for i in 0..8u8 {
                f.write_all_at(&[i + 1; 2], u64::from(i) * 2).unwrap();
            }
            sim.power_cut(PowerCut::KeepSeeded(seed));
            let mut img = vec![0u8; 16];
            f.read_exact_at(&mut img, 0).unwrap();
            img
        };
        assert_eq!(survivors(42), survivors(42), "same seed, same subset");
        // Different seeds should eventually differ (42 vs 43 do).
        assert_ne!(survivors(42), survivors(43));
    }

    #[test]
    fn sync_barrier_limits_loss() {
        let sim = SimVfs::new();
        let p = Path::new("/x");
        let f = sim.open(p, OpenMode::CreateNew).unwrap();
        f.write_all_at(b"synced", 0).unwrap();
        f.sync().unwrap();
        f.write_all_at(b"UNSYNC", 6).unwrap();
        sim.power_cut(PowerCut::KeepSeeded(7));
        // Whatever the subset decision, the synced prefix survives.
        let mut img = vec![0u8; 6];
        f.read_exact_at(&mut img, 0).unwrap();
        assert_eq!(&img, b"synced");
    }

    #[test]
    fn recorded_counters_accumulate() {
        let sim = SimVfs::new();
        let f = sim.open(Path::new("/x"), OpenMode::CreateNew).unwrap();
        f.write_all_at(&[1], 0).unwrap();
        f.sync().unwrap();
        f.set_len(0).unwrap();
        assert_eq!(sim.recorded(), (1, 1, 1));
        assert_eq!(sim.ops(), 3);
    }
}
