//! Bounded buffer pool (page cache) with scan-resistant eviction.
//!
//! The paper's core constraint (§2.1) is that the index "cannot be
//! buffered in memory unless it is serving an active use-case": memory
//! for cached pages must be strictly bounded and reclaimable. This pool
//! caches page images under a byte budget with a segmented,
//! scan-resistant policy in the LRU-K / CLOCK-Pro family:
//!
//! * New pages enter a **probationary** segment. A probationary page is
//!   promoted to the **protected** segment only after it is hit again
//!   by a point access — one-touch pages (the long tail of a partition
//!   sweep) never displace the hot set.
//! * Callers tag accesses with [`Access`]: `Point` for demand reads on
//!   the query path, `Scan` for bulk sequential reads (partition
//!   sweeps, checkpoints, readahead). Scan-tagged entries are admitted
//!   probationary with *no* second chance, so a scan of any length
//!   recycles a small probationary window instead of flushing the pool.
//!   A later point access "rescues" a scan page onto the normal
//!   promotion path.
//! * The protected segment is capped at 3/4 of the budget and evicts
//!   with CLOCK (second chance) back into probation, so even the hot
//!   set stays adaptive.
//!
//! Entries are keyed by `(page, version)`, where `version` is the WAL
//! sequence number of the frame the image came from (`0` for images
//! read from the main file since the last open). Versioned keys let
//! readers at different snapshots share one pool without ever observing
//! a page image newer than their snapshot — the cache is immutable data
//! plus an index, so no cached bytes are ever mutated in place.
//!
//! The pool's byte budget is the main lever behind the paper's
//! Small/Large device profiles (Figures 4, 5, 8), and `purge` implements
//! the ColdStart scenario of §4.1.4.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::page::{PageData, PageId, PAGE_SIZE};

/// Cache key: page number plus the WAL version of its image.
pub type PoolKey = (PageId, u64);

/// How a page is being touched, for admission and promotion decisions.
///
/// `Point` is the default for demand reads on the query path. `Scan`
/// marks bulk sequential access — full-partition sweeps, checkpoint
/// reads, prefetch — whose pages should cycle through a probationary
/// window without displacing the protected working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Access {
    /// Demand read: eligible for promotion into the protected segment.
    #[default]
    Point,
    /// Bulk read: admitted probationary with no second chance.
    Scan,
}

struct Entry {
    data: Arc<PageData>,
    /// CLOCK reference bit: set on hit, cleared on eviction scan.
    referenced: bool,
    /// True while the entry lives in the protected segment.
    protected: bool,
    /// True for scan-admitted entries that no point access has touched.
    scan: bool,
}

struct PoolInner {
    map: HashMap<PoolKey, Entry>,
    /// Probationary hand order; keys may be stale (removed from `map`
    /// or since promoted to the protected segment).
    probation: VecDeque<PoolKey>,
    /// Protected hand order; keys may be stale symmetrically.
    protected: VecDeque<PoolKey>,
    bytes: usize,
    protected_bytes: usize,
}

/// A byte-bounded page cache shared by all transactions of a store.
pub struct BufferPool {
    inner: Mutex<PoolInner>,
    capacity: usize,
    evictions: std::sync::atomic::AtomicU64,
}

/// Accounted size of one cached page (image + bookkeeping estimate).
const ENTRY_BYTES: usize = PAGE_SIZE + 64;

impl BufferPool {
    /// Creates a pool holding at most `capacity_bytes` of page images.
    /// A capacity of `0` disables caching entirely (every read goes to
    /// disk), which is useful for worst-case I/O measurements.
    pub fn new(capacity_bytes: usize) -> Self {
        BufferPool {
            inner: Mutex::new(PoolInner {
                map: HashMap::new(),
                probation: VecDeque::new(),
                protected: VecDeque::new(),
                bytes: 0,
                protected_bytes: 0,
            }),
            capacity: capacity_bytes,
            evictions: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Protected segment cap: 3/4 of the budget, leaving a quarter as
    /// the probationary window scans recycle through.
    fn protected_cap(&self) -> usize {
        self.capacity - self.capacity / 4
    }

    /// Looks up a page image as a point access, marking it recently
    /// used and advancing it on the promotion path.
    pub fn get(&self, key: PoolKey) -> Option<Arc<PageData>> {
        self.get_with(key, Access::Point)
    }

    /// Looks up a page image with an explicit access kind. `Scan` hits
    /// refresh the reference bit but never promote, so bulk readers
    /// (checkpoints, sweeps) leave segment membership untouched.
    pub fn get_with(&self, key: PoolKey, access: Access) -> Option<Arc<PageData>> {
        let mut inner = self.inner.lock();
        let entry = inner.map.get_mut(&key)?;
        entry.referenced = true;
        let data = Arc::clone(&entry.data);
        if access == Access::Point {
            if entry.scan {
                // First point touch rescues a scan page: it now earns
                // a second chance, and the next touch promotes it.
                entry.scan = false;
            } else if !entry.protected {
                entry.protected = true;
                inner.protected_bytes += ENTRY_BYTES;
                inner.protected.push_back(key);
                self.demote_to_protected_cap(&mut inner);
            }
        }
        Some(data)
    }

    /// Whether `key` is resident, without touching reference bits or
    /// segment membership.
    pub fn contains(&self, key: PoolKey) -> bool {
        self.inner.lock().map.contains_key(&key)
    }

    /// Inserts a page image as a point access.
    pub fn insert(&self, key: PoolKey, data: Arc<PageData>) {
        self.insert_with(key, data, Access::Point);
    }

    /// Inserts a page image, evicting cold entries if over budget.
    /// Inserting an already-present key refreshes its data (and a
    /// `Point` insert rescues a scan-tagged entry).
    pub fn insert_with(&self, key: PoolKey, data: Arc<PageData>, access: Access) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(e) = inner.map.get_mut(&key) {
            e.data = data;
            e.referenced = true;
            if access == Access::Point {
                e.scan = false;
            }
            return;
        }
        inner.map.insert(
            key,
            Entry {
                data,
                referenced: false,
                protected: false,
                scan: access == Access::Scan,
            },
        );
        inner.bytes += ENTRY_BYTES;
        inner.probation.push_back(key);
        self.evict_to_budget(&mut inner);
        self.maybe_compact(&mut inner);
    }

    /// Shrinks the protected segment back under its cap by demoting
    /// CLOCK victims into probation (they get one more chance there).
    fn demote_to_protected_cap(&self, inner: &mut PoolInner) {
        let cap = self.protected_cap();
        let mut guard = inner.protected.len() * 2 + 8;
        while inner.protected_bytes > cap && guard > 0 {
            guard -= 1;
            let Some(key) = inner.protected.pop_front() else {
                break;
            };
            match inner.map.get_mut(&key) {
                // Stale: removed, or demoted and re-admitted probationary.
                None => {}
                Some(e) if !e.protected => {}
                Some(e) if e.referenced => {
                    e.referenced = false;
                    inner.protected.push_back(key);
                }
                Some(e) => {
                    e.protected = false;
                    inner.protected_bytes -= ENTRY_BYTES;
                    inner.probation.push_back(key);
                }
            }
        }
    }

    fn evict_to_budget(&self, inner: &mut PoolInner) {
        // Probation first: scan-tagged entries go immediately, point
        // entries get one second chance. Each pass either evicts,
        // clears a bit, or drops a stale key, so the guard is ample.
        let mut guard = inner.probation.len() * 2 + 8;
        while inner.bytes > self.capacity && guard > 0 {
            guard -= 1;
            let Some(key) = inner.probation.pop_front() else {
                break;
            };
            match inner.map.get_mut(&key) {
                // Stale: entry already replaced/purged or promoted.
                None => {}
                Some(e) if e.protected => {}
                Some(e) if e.referenced && !e.scan => {
                    e.referenced = false;
                    inner.probation.push_back(key);
                }
                Some(_) => {
                    inner.map.remove(&key);
                    inner.bytes -= ENTRY_BYTES;
                    self.evictions
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
        }
        // Still over budget (probation drained): evict from the
        // protected segment with plain CLOCK.
        let mut guard = inner.protected.len() * 2 + 8;
        while inner.bytes > self.capacity && guard > 0 {
            guard -= 1;
            let Some(key) = inner.protected.pop_front() else {
                break;
            };
            match inner.map.get_mut(&key) {
                None => {}
                Some(e) if !e.protected => {}
                Some(e) if e.referenced => {
                    e.referenced = false;
                    inner.protected.push_back(key);
                }
                Some(_) => {
                    inner.map.remove(&key);
                    inner.bytes -= ENTRY_BYTES;
                    inner.protected_bytes -= ENTRY_BYTES;
                    self.evictions
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
        }
    }

    /// Rebuilds both hand queues without stale or duplicate keys once
    /// bookkeeping outgrows the resident set, bounding queue memory at
    /// `O(resident pages)` regardless of churn.
    fn maybe_compact(&self, inner: &mut PoolInner) {
        if inner.probation.len() + inner.protected.len() > inner.map.len() * 2 + 32 {
            Self::compact(inner);
        }
    }

    fn compact(inner: &mut PoolInner) {
        let mut seen: HashMap<PoolKey, ()> = HashMap::with_capacity(inner.map.len());
        let rebuild = |queue: &mut VecDeque<PoolKey>,
                       want_protected: bool,
                       map: &HashMap<PoolKey, Entry>,
                       seen: &mut HashMap<PoolKey, ()>| {
            let mut fresh = VecDeque::with_capacity(map.len());
            for key in queue.drain(..) {
                let live = map.get(&key).is_some_and(|e| e.protected == want_protected);
                if live && seen.insert(key, ()).is_none() {
                    fresh.push_back(key);
                }
            }
            *queue = fresh;
        };
        let map = std::mem::take(&mut inner.map);
        rebuild(&mut inner.probation, false, &map, &mut seen);
        rebuild(&mut inner.protected, true, &map, &mut seen);
        inner.map = map;
    }

    /// Drops every cached page. Models a cold application start
    /// (MicroNN-ColdStart in §4.1.4).
    pub fn purge(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.probation.clear();
        inner.protected.clear();
        inner.bytes = 0;
        inner.protected_bytes = 0;
    }

    /// Trims entries whose version is below `min_live_version`
    /// (0-version entries stay: they mirror the main file, which
    /// remains authoritative) after a checkpoint reset makes old WAL
    /// versions unreachable. Queues are compacted in the same pass so
    /// repeated checkpoint/trim cycles leave no stale-key residue.
    pub fn trim_below(&self, min_live_version: u64) {
        let mut inner = self.inner.lock();
        let dead: Vec<(PoolKey, bool)> = inner
            .map
            .iter()
            .filter(|((_, v), _)| *v != 0 && *v < min_live_version)
            .map(|(k, e)| (*k, e.protected))
            .collect();
        for (k, was_protected) in dead {
            inner.map.remove(&k);
            inner.bytes -= ENTRY_BYTES;
            if was_protected {
                inner.protected_bytes -= ENTRY_BYTES;
            }
        }
        Self::compact(&mut inner);
    }

    /// Snapshot-floor garbage collection: for each page, among cached
    /// versions at or below `floor`, only the *newest* is reachable —
    /// any snapshot `s >= floor` resolves the page to its newest
    /// version `<= s`, which is at least that one — so every older
    /// version at or below the floor is dropped. Versions above the
    /// floor are never touched (a registered reader may still resolve
    /// them), and a page with a single version keeps it. Returns the
    /// number of entries dropped.
    ///
    /// Called by the store whenever the oldest registered reader
    /// snapshot advances (epoch-based GC driven by the reader
    /// registry) and after checkpoints.
    pub fn gc_versions(&self, floor: u64) -> usize {
        let mut inner = self.inner.lock();
        let mut newest_le_floor: HashMap<PageId, u64> = HashMap::new();
        for &(page, version) in inner.map.keys() {
            if version <= floor {
                let slot = newest_le_floor.entry(page).or_insert(version);
                *slot = (*slot).max(version);
            }
        }
        let dead: Vec<(PoolKey, bool)> = inner
            .map
            .iter()
            .filter(|((page, version), _)| {
                newest_le_floor
                    .get(page)
                    .is_some_and(|&keep| *version < keep)
            })
            .map(|(k, e)| (*k, e.protected))
            .collect();
        let dropped = dead.len();
        for (k, was_protected) in dead {
            inner.map.remove(&k);
            inner.bytes -= ENTRY_BYTES;
            if was_protected {
                inner.protected_bytes -= ENTRY_BYTES;
            }
        }
        if dropped > 0 {
            Self::compact(&mut inner);
        }
        dropped
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total keys across both hand queues, including stale ones. Tests
    /// use this to assert bookkeeping stays bounded by the resident set.
    pub fn queue_len(&self) -> usize {
        let inner = self.inner.lock();
        inner.probation.len() + inner.protected.len()
    }

    /// Bytes resident in the protected segment.
    pub fn protected_bytes(&self) -> usize {
        self.inner.lock().protected_bytes
    }

    /// Configured byte budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total evictions since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(b: u8) -> Arc<PageData> {
        let mut p = PageData::zeroed();
        p[0] = b;
        Arc::new(p)
    }

    #[test]
    fn hit_and_miss() {
        let pool = BufferPool::new(10 * ENTRY_BYTES);
        assert!(pool.get((1, 0)).is_none());
        pool.insert((1, 0), page(7));
        assert_eq!(pool.get((1, 0)).unwrap()[0], 7);
        // Different version of the same page is a distinct entry.
        assert!(pool.get((1, 5)).is_none());
        pool.insert((1, 5), page(9));
        assert_eq!(pool.get((1, 0)).unwrap()[0], 7);
        assert_eq!(pool.get((1, 5)).unwrap()[0], 9);
    }

    #[test]
    fn stays_within_budget() {
        let pool = BufferPool::new(4 * ENTRY_BYTES);
        for i in 0..100u32 {
            pool.insert((i, 0), page(i as u8));
        }
        assert!(pool.resident_bytes() <= 4 * ENTRY_BYTES);
        assert!(pool.len() <= 4);
        assert!(pool.evictions() >= 96);
    }

    #[test]
    fn clock_prefers_evicting_cold_entries() {
        let pool = BufferPool::new(3 * ENTRY_BYTES);
        pool.insert((1, 0), page(1));
        pool.insert((2, 0), page(2));
        pool.insert((3, 0), page(3));
        // Touch 1 and 2 so page 3 is the cold one when 4 arrives.
        pool.get((1, 0));
        pool.get((2, 0));
        pool.insert((4, 0), page(4));
        assert!(pool.get((3, 0)).is_none(), "cold page evicted");
        assert!(pool.get((1, 0)).is_some());
        assert!(pool.get((2, 0)).is_some());
        assert!(pool.get((4, 0)).is_some());
    }

    #[test]
    fn scan_inserts_do_not_evict_protected_working_set() {
        let pool = BufferPool::new(8 * ENTRY_BYTES);
        // Build a hot set: insert + touch promotes into protected.
        for i in 0..4u32 {
            pool.insert((i, 0), page(i as u8));
            pool.get((i, 0));
        }
        assert_eq!(pool.protected_bytes(), 4 * ENTRY_BYTES);
        // A "full partition sweep" far larger than the budget.
        for i in 100..400u32 {
            pool.insert_with((i, 0), page(i as u8), Access::Scan);
        }
        for i in 0..4u32 {
            assert!(pool.contains((i, 0)), "hot page {i} survived the scan");
        }
        assert!(pool.resident_bytes() <= 8 * ENTRY_BYTES);
    }

    #[test]
    fn point_access_rescues_scan_page() {
        let pool = BufferPool::new(4 * ENTRY_BYTES);
        pool.insert_with((1, 0), page(1), Access::Scan);
        // Two point touches: untag, then promote.
        pool.get((1, 0));
        pool.get((1, 0));
        for i in 10..30u32 {
            pool.insert_with((i, 0), page(i as u8), Access::Scan);
        }
        assert!(pool.contains((1, 0)), "rescued page is protected");
    }

    #[test]
    fn scan_get_does_not_promote() {
        let pool = BufferPool::new(4 * ENTRY_BYTES);
        pool.insert((1, 0), page(1));
        pool.get_with((1, 0), Access::Scan);
        pool.get_with((1, 0), Access::Scan);
        assert_eq!(pool.protected_bytes(), 0, "scan hits never promote");
    }

    #[test]
    fn protected_segment_stays_under_cap() {
        let pool = BufferPool::new(8 * ENTRY_BYTES);
        for i in 0..50u32 {
            pool.insert((i, 0), page(i as u8));
            pool.get((i, 0));
        }
        assert!(pool.protected_bytes() <= 6 * ENTRY_BYTES);
        assert!(pool.resident_bytes() <= 8 * ENTRY_BYTES);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let pool = BufferPool::new(0);
        pool.insert((1, 0), page(1));
        assert!(pool.get((1, 0)).is_none());
        assert_eq!(pool.resident_bytes(), 0);
    }

    #[test]
    fn purge_empties_pool() {
        let pool = BufferPool::new(10 * ENTRY_BYTES);
        for i in 0..5u32 {
            pool.insert((i, 0), page(i as u8));
        }
        assert_eq!(pool.len(), 5);
        pool.purge();
        assert_eq!(pool.len(), 0);
        assert_eq!(pool.resident_bytes(), 0);
        assert!(pool.get((0, 0)).is_none());
    }

    #[test]
    fn trim_below_drops_old_versions_keeps_base() {
        let pool = BufferPool::new(10 * ENTRY_BYTES);
        pool.insert((1, 0), page(1)); // main-file image
        pool.insert((1, 3), page(2)); // old wal version
        pool.insert((1, 9), page(3)); // live wal version
        pool.trim_below(5);
        assert!(pool.get((1, 0)).is_some(), "base image kept");
        assert!(pool.get((1, 3)).is_none(), "stale version trimmed");
        assert!(pool.get((1, 9)).is_some(), "live version kept");
    }

    #[test]
    fn trim_cycles_keep_queue_bounded() {
        // Regression: trim_below used to remove map entries but leave
        // their keys in the hand queue, growing it without bound across
        // checkpoint/trim cycles while the pool stayed under budget.
        let pool = BufferPool::new(64 * ENTRY_BYTES);
        for cycle in 1..=200u64 {
            for pg in 0..8u32 {
                pool.insert((pg, cycle), page(pg as u8));
            }
            pool.trim_below(cycle);
        }
        assert!(pool.len() <= 8);
        assert!(
            pool.queue_len() <= pool.len() * 2 + 32,
            "queue grew unboundedly: {} keys for {} resident pages",
            pool.queue_len(),
            pool.len()
        );
    }

    #[test]
    fn gc_versions_keeps_newest_at_or_below_floor() {
        let pool = BufferPool::new(16 * ENTRY_BYTES);
        pool.insert((1, 0), page(1)); // base image, superseded
        pool.insert((1, 3), page(2)); // superseded by v7
        pool.insert((1, 7), page(3)); // newest <= floor: reachable
        pool.insert((1, 12), page(4)); // above floor: reachable
        pool.insert((2, 2), page(5)); // only version of page 2: kept
        let dropped = pool.gc_versions(9);
        assert_eq!(dropped, 2);
        assert!(pool.get((1, 0)).is_none(), "superseded base dropped");
        assert!(pool.get((1, 3)).is_none(), "superseded version dropped");
        assert!(pool.get((1, 7)).is_some(), "newest <= floor kept");
        assert!(pool.get((1, 12)).is_some(), "version above floor kept");
        assert!(pool.get((2, 2)).is_some(), "sole version kept");
    }

    #[test]
    fn gc_versions_cycles_keep_queue_bounded() {
        let pool = BufferPool::new(64 * ENTRY_BYTES);
        for cycle in 1..=200u64 {
            for pg in 0..8u32 {
                pool.insert((pg, cycle), page(pg as u8));
            }
            pool.gc_versions(cycle);
        }
        assert!(pool.len() <= 8, "one live version per page");
        assert!(
            pool.queue_len() <= pool.len() * 2 + 32,
            "queue grew unboundedly: {} keys for {} resident pages",
            pool.queue_len(),
            pool.len()
        );
    }

    #[test]
    fn reinsert_refreshes_without_double_accounting() {
        let pool = BufferPool::new(10 * ENTRY_BYTES);
        pool.insert((1, 0), page(1));
        let before = pool.resident_bytes();
        pool.insert((1, 0), page(2));
        assert_eq!(pool.resident_bytes(), before);
        assert_eq!(pool.get((1, 0)).unwrap()[0], 2);
    }

    #[test]
    fn concurrent_stress_holds_budget_invariant() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let pool = Arc::new(BufferPool::new(16 * ENTRY_BYTES));
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let pool = Arc::clone(&pool);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut x = t.wrapping_mul(0x9e3779b97f4a7c15) | 1;
                for i in 0..4000u64 {
                    // xorshift: cheap deterministic per-thread stream.
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let pg = (x % 64) as u32;
                    let ver = x % 8;
                    match x % 10 {
                        0..=3 => {
                            pool.get((pg, ver));
                        }
                        4..=7 => {
                            let kind = if x % 2 == 0 {
                                Access::Point
                            } else {
                                Access::Scan
                            };
                            pool.insert_with((pg, ver), page(pg as u8), kind);
                        }
                        8 => {
                            if x % 2 == 0 {
                                pool.trim_below(ver);
                            } else {
                                pool.gc_versions(ver);
                            }
                        }
                        _ => {
                            if i % 512 == 0 {
                                pool.purge();
                            }
                        }
                    }
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        assert!(pool.resident_bytes() <= 16 * ENTRY_BYTES);
        assert_eq!(pool.resident_bytes(), pool.len() * ENTRY_BYTES);
        assert!(pool.protected_bytes() <= pool.resident_bytes());
    }
}
