//! Bounded buffer pool (page cache).
//!
//! The paper's core constraint (§2.1) is that the index "cannot be
//! buffered in memory unless it is serving an active use-case": memory
//! for cached pages must be strictly bounded and reclaimable. This pool
//! caches page images under a byte budget with CLOCK (second-chance)
//! eviction.
//!
//! Entries are keyed by `(page, version)`, where `version` is the WAL
//! sequence number of the frame the image came from (`0` for images
//! read from the main file since the last open). Versioned keys let
//! readers at different snapshots share one pool without ever observing
//! a page image newer than their snapshot — the cache is immutable data
//! plus an index, so no cached bytes are ever mutated in place.
//!
//! The pool's byte budget is the main lever behind the paper's
//! Small/Large device profiles (Figures 4, 5, 8), and `purge` implements
//! the ColdStart scenario of §4.1.4.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::page::{PageData, PageId, PAGE_SIZE};

/// Cache key: page number plus the WAL version of its image.
pub type PoolKey = (PageId, u64);

struct Entry {
    data: Arc<PageData>,
    /// CLOCK reference bit: set on hit, cleared on eviction scan.
    referenced: bool,
}

struct PoolInner {
    map: HashMap<PoolKey, Entry>,
    /// CLOCK hand order; keys may be stale (already removed from `map`).
    queue: VecDeque<PoolKey>,
    bytes: usize,
}

/// A byte-bounded page cache shared by all transactions of a store.
pub struct BufferPool {
    inner: Mutex<PoolInner>,
    capacity: usize,
    evictions: std::sync::atomic::AtomicU64,
}

/// Accounted size of one cached page (image + bookkeeping estimate).
const ENTRY_BYTES: usize = PAGE_SIZE + 64;

impl BufferPool {
    /// Creates a pool holding at most `capacity_bytes` of page images.
    /// A capacity of `0` disables caching entirely (every read goes to
    /// disk), which is useful for worst-case I/O measurements.
    pub fn new(capacity_bytes: usize) -> Self {
        BufferPool {
            inner: Mutex::new(PoolInner {
                map: HashMap::new(),
                queue: VecDeque::new(),
                bytes: 0,
            }),
            capacity: capacity_bytes,
            evictions: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Looks up a page image, marking it recently used.
    pub fn get(&self, key: PoolKey) -> Option<Arc<PageData>> {
        let mut inner = self.inner.lock();
        let entry = inner.map.get_mut(&key)?;
        entry.referenced = true;
        Some(Arc::clone(&entry.data))
    }

    /// Inserts a page image, evicting cold entries if over budget.
    /// Inserting an already-present key refreshes its data.
    pub fn insert(&self, key: PoolKey, data: Arc<PageData>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(e) = inner.map.get_mut(&key) {
            e.data = data;
            e.referenced = true;
            return;
        }
        inner.map.insert(
            key,
            Entry {
                data,
                referenced: false,
            },
        );
        inner.bytes += ENTRY_BYTES;
        inner.queue.push_back(key);
        self.evict_to_budget(&mut inner);
    }

    fn evict_to_budget(&self, inner: &mut PoolInner) {
        // CLOCK sweep: give each referenced entry one second chance.
        // The loop terminates because every pass either evicts or
        // clears a reference bit, and stale queue keys are dropped.
        let mut guard = inner.queue.len() * 2 + 8;
        while inner.bytes > self.capacity && guard > 0 {
            guard -= 1;
            let Some(key) = inner.queue.pop_front() else {
                break;
            };
            match inner.map.get_mut(&key) {
                None => {} // stale: entry already replaced/purged
                Some(e) if e.referenced => {
                    e.referenced = false;
                    inner.queue.push_back(key);
                }
                Some(_) => {
                    inner.map.remove(&key);
                    inner.bytes -= ENTRY_BYTES;
                    self.evictions
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
        }
    }

    /// Drops every cached page. Models a cold application start
    /// (MicroNN-ColdStart in §4.1.4).
    pub fn purge(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.queue.clear();
        inner.bytes = 0;
    }

    /// Removes cached versions of pages that a checkpoint reset made
    /// unreachable is unnecessary — versioned keys never alias — but
    /// old versions become dead weight; this trims entries whose
    /// version is below `min_live_version` (0-version entries stay:
    /// they mirror the main file, which remains authoritative).
    pub fn trim_below(&self, min_live_version: u64) {
        let mut inner = self.inner.lock();
        let dead: Vec<PoolKey> = inner
            .map
            .keys()
            .filter(|(_, v)| *v != 0 && *v < min_live_version)
            .copied()
            .collect();
        for k in dead {
            inner.map.remove(&k);
            inner.bytes -= ENTRY_BYTES;
        }
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Configured byte budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total evictions since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(b: u8) -> Arc<PageData> {
        let mut p = PageData::zeroed();
        p[0] = b;
        Arc::new(p)
    }

    #[test]
    fn hit_and_miss() {
        let pool = BufferPool::new(10 * ENTRY_BYTES);
        assert!(pool.get((1, 0)).is_none());
        pool.insert((1, 0), page(7));
        assert_eq!(pool.get((1, 0)).unwrap()[0], 7);
        // Different version of the same page is a distinct entry.
        assert!(pool.get((1, 5)).is_none());
        pool.insert((1, 5), page(9));
        assert_eq!(pool.get((1, 0)).unwrap()[0], 7);
        assert_eq!(pool.get((1, 5)).unwrap()[0], 9);
    }

    #[test]
    fn stays_within_budget() {
        let pool = BufferPool::new(4 * ENTRY_BYTES);
        for i in 0..100u32 {
            pool.insert((i, 0), page(i as u8));
        }
        assert!(pool.resident_bytes() <= 4 * ENTRY_BYTES);
        assert!(pool.len() <= 4);
        assert!(pool.evictions() >= 96);
    }

    #[test]
    fn clock_prefers_evicting_cold_entries() {
        let pool = BufferPool::new(3 * ENTRY_BYTES);
        pool.insert((1, 0), page(1));
        pool.insert((2, 0), page(2));
        pool.insert((3, 0), page(3));
        // Touch 1 and 2 so page 3 is the cold one when 4 arrives.
        pool.get((1, 0));
        pool.get((2, 0));
        pool.insert((4, 0), page(4));
        assert!(pool.get((3, 0)).is_none(), "cold page evicted");
        assert!(pool.get((1, 0)).is_some());
        assert!(pool.get((2, 0)).is_some());
        assert!(pool.get((4, 0)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let pool = BufferPool::new(0);
        pool.insert((1, 0), page(1));
        assert!(pool.get((1, 0)).is_none());
        assert_eq!(pool.resident_bytes(), 0);
    }

    #[test]
    fn purge_empties_pool() {
        let pool = BufferPool::new(10 * ENTRY_BYTES);
        for i in 0..5u32 {
            pool.insert((i, 0), page(i as u8));
        }
        assert_eq!(pool.len(), 5);
        pool.purge();
        assert_eq!(pool.len(), 0);
        assert_eq!(pool.resident_bytes(), 0);
        assert!(pool.get((0, 0)).is_none());
    }

    #[test]
    fn trim_below_drops_old_versions_keeps_base() {
        let pool = BufferPool::new(10 * ENTRY_BYTES);
        pool.insert((1, 0), page(1)); // main-file image
        pool.insert((1, 3), page(2)); // old wal version
        pool.insert((1, 9), page(3)); // live wal version
        pool.trim_below(5);
        assert!(pool.get((1, 0)).is_some(), "base image kept");
        assert!(pool.get((1, 3)).is_none(), "stale version trimmed");
        assert!(pool.get((1, 9)).is_some(), "live version kept");
    }

    #[test]
    fn reinsert_refreshes_without_double_accounting() {
        let pool = BufferPool::new(10 * ENTRY_BYTES);
        pool.insert((1, 0), page(1));
        let before = pool.resident_bytes();
        pool.insert((1, 0), page(2));
        assert_eq!(pool.resident_bytes(), before);
        assert_eq!(pool.get((1, 0)).unwrap()[0], 2);
    }
}
