//! Disk-resident B+tree with copy-on-write pages.
//!
//! This provides the ordered clustered storage the paper gets from
//! SQLite's b-tree (§3.2): tables cluster rows on their encoded primary
//! key so that "the rows of the vector table are clustered on disk,
//! giving data locality to vectors in the same partition".
//!
//! Design notes:
//!
//! * **Stable roots.** A tree's root page id never changes: when the
//!   root splits, its content moves to a fresh page and the root is
//!   rewritten as an interior node; when it collapses, the last child
//!   is folded back in. Catalog entries can therefore store root ids
//!   permanently.
//! * **Overflow chains.** Values whose cell would exceed a quarter page
//!   spill entirely to a chain of overflow pages (like SQLite). Vector
//!   blobs (e.g. 512-d f32 = 2 KiB) typically spill; attribute rows
//!   stay inline.
//! * **Deletes rebalance.** Underfull nodes borrow from or merge with a
//!   sibling, so heavy delete workloads (partition rewrites during
//!   index rebuilds) do not strand mostly-empty pages.

pub mod cursor;
pub mod node;

pub use cursor::Cursor;

use crate::error::{Result, StorageError};
use crate::page::{page_type, PageId, PAGE_SIZE};
use crate::store::{PageRead, WriteTxn};

use node::{
    expect_type, InteriorNode, LeafNode, OwnedVal, ValRef, MAX_INLINE_CELL, MAX_KEY_LEN,
    NODE_CAPACITY, UNDERFLOW_BYTES,
};

/// Bytes of payload stored per overflow page.
const OVERFLOW_CAPACITY: usize = PAGE_SIZE - 8;

/// Fetches a B+tree node page and structurally validates it
/// ([`node::validate`]): corrupted bytes become a
/// [`StorageError::Corrupt`] at the fetch boundary — where recovery
/// and `fsck` can report them — instead of a panic inside the
/// zero-copy cell accessors. Every traversal goes through this.
pub(crate) fn fetch_node<R: PageRead + ?Sized>(
    r: &R,
    id: PageId,
) -> Result<std::sync::Arc<crate::page::PageData>> {
    let p = r.page(id)?;
    node::validate(&p, id)?;
    Ok(p)
}

/// Like [`fetch_node`] but reads with the sequential-scan admission
/// hint ([`PageRead::page_scan`]): cursors walking the leaf sibling
/// chain use this so a long partition scan cannot flush the buffer
/// pool's protected working set (interior nodes, centroids, catalog).
pub(crate) fn fetch_node_scan<R: PageRead + ?Sized>(
    r: &R,
    id: PageId,
) -> Result<std::sync::Arc<crate::page::PageData>> {
    let p = r.page_scan(id)?;
    node::validate(&p, id)?;
    Ok(p)
}

/// A handle to a B+tree rooted at a fixed page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTree {
    root: PageId,
}

impl BTree {
    /// Allocates a new empty tree (a single empty leaf).
    pub fn create(txn: &mut WriteTxn) -> Result<BTree> {
        let root = txn.allocate_page()?;
        LeafNode::default().write(txn.page_mut(root)?);
        Ok(BTree { root })
    }

    /// Opens a tree by its root page id (from a catalog or header slot).
    pub fn open(root: PageId) -> BTree {
        BTree { root }
    }

    /// Root page id; stable for the lifetime of the tree.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Point lookup. Returns the full value (overflow chains are
    /// reassembled).
    pub fn get<R: PageRead + ?Sized>(&self, r: &R, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut id = self.root;
        loop {
            let p = fetch_node(r, id)?;
            match p.page_type() {
                page_type::BTREE_INTERIOR => id = node::interior_descend(&p, key),
                page_type::BTREE_LEAF => {
                    return match node::leaf_search(&p, key) {
                        Ok(i) => Ok(Some(read_val(r, node::leaf_val(&p, i))?)),
                        Err(_) => Ok(None),
                    };
                }
                t => {
                    return Err(StorageError::Corrupt(format!(
                        "page {id}: unexpected type {t} during descent"
                    )))
                }
            }
        }
    }

    /// Whether `key` is present (no value materialization).
    pub fn contains_key<R: PageRead + ?Sized>(&self, r: &R, key: &[u8]) -> Result<bool> {
        let mut id = self.root;
        loop {
            let p = fetch_node(r, id)?;
            match p.page_type() {
                page_type::BTREE_INTERIOR => id = node::interior_descend(&p, key),
                page_type::BTREE_LEAF => return Ok(node::leaf_search(&p, key).is_ok()),
                t => {
                    return Err(StorageError::Corrupt(format!(
                        "page {id}: unexpected type {t} during descent"
                    )))
                }
            }
        }
    }

    /// Inserts or replaces; returns the previous value if any.
    pub fn insert(&self, txn: &mut WriteTxn, key: &[u8], val: &[u8]) -> Result<Option<Vec<u8>>> {
        if key.len() > MAX_KEY_LEN {
            return Err(StorageError::KeyTooLarge(key.len()));
        }
        match insert_rec(txn, self.root, key, val)? {
            Ins::Done(old) => Ok(old),
            Ins::Split { sep, right, old } => {
                // Stable-root split: move the (already split) root
                // content to a fresh page and replant the root as an
                // interior node over the two halves.
                let left = txn.allocate_page()?;
                let root_img = txn.page(self.root)?;
                *txn.page_mut(left)? = (*root_img).clone();
                let new_root = InteriorNode {
                    cells: vec![(left, sep)],
                    rightmost: right,
                };
                new_root.write(txn.page_mut(self.root)?);
                Ok(old)
            }
        }
    }

    /// Deletes `key`; returns its previous value if it existed.
    pub fn delete(&self, txn: &mut WriteTxn, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let res = delete_rec(txn, self.root, key, true)?.old;
        // Collapse an interior root with a single remaining child.
        let p = fetch_node(txn, self.root)?;
        if p.page_type() == page_type::BTREE_INTERIOR && node::ncells(&p) == 0 {
            let child = node::right_ptr(&p);
            let child_img = txn.page(child)?;
            *txn.page_mut(self.root)? = (*child_img).clone();
            txn.free_page(child)?;
        }
        Ok(res)
    }

    /// Removes every entry, freeing all pages except the root (which
    /// becomes an empty leaf).
    pub fn clear(&self, txn: &mut WriteTxn) -> Result<()> {
        free_subtree(txn, self.root, false)?;
        LeafNode::default().write(txn.page_mut(self.root)?);
        Ok(())
    }

    /// Frees the whole tree including the root page. The handle is
    /// consumed; the root id must be dropped from any catalog.
    pub fn destroy(self, txn: &mut WriteTxn) -> Result<()> {
        free_subtree(txn, self.root, true)
    }

    /// Tree height (1 = a single leaf). Diagnostic.
    pub fn depth<R: PageRead + ?Sized>(&self, r: &R) -> Result<usize> {
        let mut id = self.root;
        let mut d = 1;
        loop {
            let p = fetch_node(r, id)?;
            match p.page_type() {
                page_type::BTREE_INTERIOR => {
                    id = node::right_ptr(&p);
                    d += 1;
                }
                page_type::BTREE_LEAF => return Ok(d),
                t => {
                    return Err(StorageError::Corrupt(format!(
                        "page {id}: unexpected type {t} during descent"
                    )))
                }
            }
        }
    }

    /// Collects the page ids of the leaves that cover keys with the
    /// given `prefix`, reading **interior pages only** — the returned
    /// leaves are never fetched. This is the discovery half of probe
    /// readahead: a scanner hands these ids to
    /// [`PageRead::prefetch_pages`] so the next partition's leaves are
    /// already resident when its scan starts. At most `max` ids are
    /// returned (overflow chains hanging off the leaves are not
    /// discoverable without reading them, so they stay demand-paged).
    pub fn prefix_leaf_pages<R: PageRead + ?Sized>(
        &self,
        r: &R,
        prefix: &[u8],
        max: usize,
    ) -> Result<Vec<PageId>> {
        let mut out = Vec::new();
        if max == 0 {
            return Ok(out);
        }
        let depth = self.depth(r)?;
        let hi = cursor::prefix_successor(prefix);
        collect_leaves(r, self.root, prefix, hi.as_deref(), max, depth, &mut out)?;
        Ok(out)
    }

    /// Number of entries, by full scan. Diagnostic; the relational
    /// layer maintains its own row counts.
    pub fn count<R: PageRead + ?Sized>(&self, r: &R) -> Result<u64> {
        let mut n = 0u64;
        let mut id = leftmost_leaf(r, self.root)?;
        loop {
            let p = fetch_node(r, id)?;
            n += node::ncells(&p) as u64;
            let next = node::right_ptr(&p);
            if next == 0 {
                return Ok(n);
            }
            id = next;
        }
    }
}

/// Recursive helper for [`BTree::prefix_leaf_pages`]: walks the
/// interior levels of the subtree rooted at `id` (whose height is
/// `depth`), appending the page ids of leaves intersecting
/// `[lo, hi)` without fetching them. Interior fetches use the normal
/// point hint — interior pages are exactly the reusable working set
/// the pool's protected segment exists to keep.
fn collect_leaves<R: PageRead + ?Sized>(
    r: &R,
    id: PageId,
    lo: &[u8],
    hi: Option<&[u8]>,
    max: usize,
    depth: usize,
    out: &mut Vec<PageId>,
) -> Result<()> {
    if out.len() >= max {
        return Ok(());
    }
    if depth <= 1 {
        // Single-leaf tree: the root itself is the only leaf.
        out.push(id);
        return Ok(());
    }
    let p = fetch_node(r, id)?;
    expect_type(&p, page_type::BTREE_INTERIOR, id)?;
    let n = node::ncells(&p);
    let i0 = node::interior_descend_index(&p, lo);
    // The child that would contain `hi` can still hold keys below it,
    // so the (exclusive) upper bound is inclusive at child granularity.
    let i1 = match hi {
        Some(h) => node::interior_descend_index(&p, h),
        None => n,
    };
    for i in i0..=i1 {
        if out.len() >= max {
            break;
        }
        let child = if i < n {
            node::interior_child(&p, i)
        } else {
            node::right_ptr(&p)
        };
        if depth == 2 {
            out.push(child);
        } else {
            collect_leaves(r, child, lo, hi, max, depth - 1, out)?;
        }
    }
    Ok(())
}

/// Finds the leftmost leaf under `id`.
pub(crate) fn leftmost_leaf<R: PageRead + ?Sized>(r: &R, mut id: PageId) -> Result<PageId> {
    loop {
        let p = fetch_node(r, id)?;
        match p.page_type() {
            page_type::BTREE_INTERIOR => {
                id = if node::ncells(&p) > 0 {
                    node::interior_child(&p, 0)
                } else {
                    node::right_ptr(&p)
                };
            }
            page_type::BTREE_LEAF => return Ok(id),
            t => {
                return Err(StorageError::Corrupt(format!(
                    "page {id}: unexpected type {t} during descent"
                )))
            }
        }
    }
}

/// Materializes a leaf value (follows overflow chains).
pub(crate) fn read_val<R: PageRead + ?Sized>(r: &R, v: ValRef<'_>) -> Result<Vec<u8>> {
    match v {
        ValRef::Inline(b) => Ok(b.to_vec()),
        ValRef::Overflow { total, head } => read_overflow(r, head, total, false),
    }
}

/// [`read_val`] with the scan admission hint on overflow pages. Spilled
/// vector blobs are the bulk of a partition scan's bytes, so cursors
/// must tag their overflow reads too or the scan would still evict the
/// protected set through the chain pages.
pub(crate) fn read_val_scan<R: PageRead + ?Sized>(r: &R, v: ValRef<'_>) -> Result<Vec<u8>> {
    match v {
        ValRef::Inline(b) => Ok(b.to_vec()),
        ValRef::Overflow { total, head } => read_overflow(r, head, total, true),
    }
}

fn read_overflow<R: PageRead + ?Sized>(
    r: &R,
    head: PageId,
    total: u32,
    scan: bool,
) -> Result<Vec<u8>> {
    // `total` comes from a cell on disk: cap the pre-allocation and
    // bail as soon as the chain outgrows it, so a corrupted length or
    // a cycle in the chain is an error, not an unbounded allocation.
    let mut out = Vec::with_capacity((total as usize).min(OVERFLOW_CAPACITY * 4));
    let mut id = head;
    while id != 0 {
        let p = if scan { r.page_scan(id)? } else { r.page(id)? };
        expect_type(&p, page_type::OVERFLOW, id)?;
        let len = p.get_u16(2) as usize;
        // Chunks are never empty (a zero-length chunk would also let a
        // cycle in the chain spin forever).
        if len == 0 || len > OVERFLOW_CAPACITY || out.len() + len > total as usize {
            return Err(StorageError::Corrupt(format!(
                "overflow chain {head}: malformed chunk on page {id}"
            )));
        }
        out.extend_from_slice(&p[8..8 + len]);
        id = p.get_u32(4);
    }
    if out.len() != total as usize {
        return Err(StorageError::Corrupt(format!(
            "overflow chain {head}: expected {total} bytes, found {}",
            out.len()
        )));
    }
    Ok(out)
}

fn write_overflow(txn: &mut WriteTxn, data: &[u8]) -> Result<PageId> {
    debug_assert!(!data.is_empty());
    // Allocate the chain front to back, linking as we go.
    let mut chunks = data.chunks(OVERFLOW_CAPACITY).peekable();
    let head = txn.allocate_page()?;
    let mut cur = head;
    while let Some(chunk) = chunks.next() {
        let next = if chunks.peek().is_some() {
            txn.allocate_page()?
        } else {
            0
        };
        let p = txn.page_mut(cur)?;
        p.fill(0);
        p[0] = page_type::OVERFLOW;
        p.put_u16(2, chunk.len() as u16);
        p.put_u32(4, next);
        p[8..8 + chunk.len()].copy_from_slice(chunk);
        cur = next;
    }
    Ok(head)
}

fn free_overflow(txn: &mut WriteTxn, head: PageId) -> Result<()> {
    let mut id = head;
    while id != 0 {
        let p = txn.page(id)?;
        expect_type(&p, page_type::OVERFLOW, id)?;
        let next = p.get_u32(4);
        txn.free_page(id)?;
        id = next;
    }
    Ok(())
}

/// Converts a value into its stored representation, spilling large
/// values to an overflow chain.
fn make_val(txn: &mut WriteTxn, key_len: usize, val: &[u8]) -> Result<OwnedVal> {
    if node::LEAF_INLINE_OVERHEAD + key_len + val.len() <= MAX_INLINE_CELL {
        Ok(OwnedVal::Inline(val.to_vec()))
    } else {
        let head = write_overflow(txn, val)?;
        Ok(OwnedVal::Overflow {
            total: val.len() as u32,
            head,
        })
    }
}

/// Consumes a stored value: returns its bytes and frees any chain.
fn take_val(txn: &mut WriteTxn, v: OwnedVal) -> Result<Vec<u8>> {
    match v {
        OwnedVal::Inline(b) => Ok(b),
        OwnedVal::Overflow { total, head } => {
            let bytes = read_overflow(txn, head, total, false)?;
            free_overflow(txn, head)?;
            Ok(bytes)
        }
    }
}

enum Ins {
    Done(Option<Vec<u8>>),
    Split {
        /// Max key remaining in the (left) split node.
        sep: Vec<u8>,
        /// Newly allocated right node.
        right: PageId,
        old: Option<Vec<u8>>,
    },
}

fn insert_rec(txn: &mut WriteTxn, id: PageId, key: &[u8], val: &[u8]) -> Result<Ins> {
    let p = fetch_node(txn, id)?;
    match p.page_type() {
        page_type::BTREE_LEAF => {
            let mut leaf = LeafNode::parse(&p);
            drop(p);
            let stored = make_val(txn, key.len(), val)?;
            let mut old = None;
            match leaf.cells.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                Ok(i) => {
                    let prev = std::mem::replace(&mut leaf.cells[i].1, stored);
                    old = Some(take_val(txn, prev)?);
                }
                Err(i) => leaf.cells.insert(i, (key.to_vec(), stored)),
            }
            if leaf.fits() {
                leaf.write(txn.page_mut(id)?);
                return Ok(Ins::Done(old));
            }
            let mut right = leaf.split_off();
            let right_id = txn.allocate_page()?;
            right.right_sibling = leaf.right_sibling;
            leaf.right_sibling = right_id;
            let sep = leaf.cells.last().expect("left half non-empty").0.clone();
            right.write(txn.page_mut(right_id)?);
            leaf.write(txn.page_mut(id)?);
            Ok(Ins::Split {
                sep,
                right: right_id,
                old,
            })
        }
        page_type::BTREE_INTERIOR => {
            let idx = node::interior_descend_index(&p, key);
            let n = node::ncells(&p);
            let child = if idx == n {
                node::right_ptr(&p)
            } else {
                node::interior_child(&p, idx)
            };
            drop(p);
            match insert_rec(txn, child, key, val)? {
                Ins::Done(old) => Ok(Ins::Done(old)),
                Ins::Split { sep, right, old } => {
                    let p = fetch_node(txn, id)?;
                    let mut interior = InteriorNode::parse(&p);
                    drop(p);
                    if idx == interior.cells.len() {
                        // Rightmost child split: child keeps `<= sep`,
                        // the new right node becomes rightmost.
                        interior.cells.push((child, sep));
                        interior.rightmost = right;
                    } else {
                        // cells[idx] bounded the child; the child now
                        // covers `<= sep` and the new node inherits the
                        // old bound.
                        let old_bound = interior.cells[idx].1.clone();
                        interior.cells[idx] = (child, sep);
                        interior.cells.insert(idx + 1, (right, old_bound));
                    }
                    if interior.fits() {
                        interior.write(txn.page_mut(id)?);
                        return Ok(Ins::Done(old));
                    }
                    let (promoted, right_node) = interior.split_off();
                    let right_id = txn.allocate_page()?;
                    right_node.write(txn.page_mut(right_id)?);
                    interior.write(txn.page_mut(id)?);
                    Ok(Ins::Split {
                        sep: promoted,
                        right: right_id,
                        old,
                    })
                }
            }
        }
        t => Err(StorageError::Corrupt(format!(
            "page {id}: unexpected type {t} in insert"
        ))),
    }
}

struct Removed {
    old: Option<Vec<u8>>,
    underflow: bool,
}

fn delete_rec(txn: &mut WriteTxn, id: PageId, key: &[u8], is_root: bool) -> Result<Removed> {
    let p = fetch_node(txn, id)?;
    match p.page_type() {
        page_type::BTREE_LEAF => {
            let mut leaf = LeafNode::parse(&p);
            drop(p);
            match leaf.cells.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                Err(_) => Ok(Removed {
                    old: None,
                    underflow: false,
                }),
                Ok(i) => {
                    let (_, v) = leaf.cells.remove(i);
                    let old = take_val(txn, v)?;
                    let underflow = !is_root && leaf.used_bytes() < UNDERFLOW_BYTES;
                    leaf.write(txn.page_mut(id)?);
                    Ok(Removed {
                        old: Some(old),
                        underflow,
                    })
                }
            }
        }
        page_type::BTREE_INTERIOR => {
            let idx = node::interior_descend_index(&p, key);
            let n = node::ncells(&p);
            let child = if idx == n {
                node::right_ptr(&p)
            } else {
                node::interior_child(&p, idx)
            };
            drop(p);
            let res = delete_rec(txn, child, key, false)?;
            if res.old.is_none() || !res.underflow {
                return Ok(Removed {
                    old: res.old,
                    underflow: false,
                });
            }
            // The child went underfull: rebalance it with a sibling.
            let p = fetch_node(txn, id)?;
            let mut interior = InteriorNode::parse(&p);
            drop(p);
            rebalance_child(txn, &mut interior, idx)?;
            let underflow = !is_root && interior.used_bytes() < UNDERFLOW_BYTES;
            interior.write(txn.page_mut(id)?);
            Ok(Removed {
                old: res.old,
                underflow,
            })
        }
        t => Err(StorageError::Corrupt(format!(
            "page {id}: unexpected type {t} in delete"
        ))),
    }
}

/// Rebalances the child at position `pos` of `parent` (positions run
/// `0..=ncells`, with `ncells` = rightmost child) by merging with or
/// borrowing from an adjacent sibling. Mutates `parent` in memory; the
/// caller writes it back.
fn rebalance_child(txn: &mut WriteTxn, parent: &mut InteriorNode, pos: usize) -> Result<()> {
    let n = parent.cells.len();
    if n == 0 {
        return Ok(()); // single-child parent; root collapse handles it
    }
    // Work on the pair (left_pos, left_pos + 1).
    let left_pos = if pos < n { pos } else { pos - 1 };
    let child_at = |parent: &InteriorNode, i: usize| -> PageId {
        if i < parent.cells.len() {
            parent.cells[i].0
        } else {
            parent.rightmost
        }
    };
    let left_id = child_at(parent, left_pos);
    let right_id = child_at(parent, left_pos + 1);
    let lp = fetch_node(txn, left_id)?;
    let kind = lp.page_type();

    if kind == page_type::BTREE_LEAF {
        let mut left = LeafNode::parse(&lp);
        drop(lp);
        let rp = fetch_node(txn, right_id)?;
        expect_type(&rp, page_type::BTREE_LEAF, right_id)?;
        let right = LeafNode::parse(&rp);
        drop(rp);
        if left.used_bytes() + right.used_bytes() <= NODE_CAPACITY {
            // Merge right into left; drop the separator.
            left.right_sibling = right.right_sibling;
            left.cells.extend(right.cells);
            left.write(txn.page_mut(left_id)?);
            txn.free_page(right_id)?;
            remove_child(parent, left_pos, left_id);
        } else {
            // Redistribute evenly across the pair.
            let mut combined = LeafNode {
                cells: std::mem::take(&mut left.cells),
                right_sibling: right_id,
            };
            combined.cells.extend(right.cells);
            let mut new_right = combined.split_off();
            new_right.right_sibling = right.right_sibling;
            combined.write(txn.page_mut(left_id)?);
            new_right.write(txn.page_mut(right_id)?);
            parent.cells[left_pos].1 = combined.cells.last().expect("non-empty").0.clone();
        }
    } else {
        let mut left = InteriorNode::parse(&lp);
        drop(lp);
        let rp = fetch_node(txn, right_id)?;
        expect_type(&rp, page_type::BTREE_INTERIOR, right_id)?;
        let right = InteriorNode::parse(&rp);
        drop(rp);
        let sep = parent.cells[left_pos].1.clone();
        // Conceptually concatenate: left cells, (left.rightmost, sep),
        // right cells, rightmost = right.rightmost.
        let mut combined = InteriorNode {
            cells: std::mem::take(&mut left.cells),
            rightmost: right.rightmost,
        };
        combined.cells.push((left.rightmost, sep));
        combined.cells.extend(right.cells);
        if combined.fits() {
            combined.write(txn.page_mut(left_id)?);
            txn.free_page(right_id)?;
            remove_child(parent, left_pos, left_id);
        } else {
            let (promoted, new_right) = combined.split_off();
            combined.write(txn.page_mut(left_id)?);
            new_right.write(txn.page_mut(right_id)?);
            parent.cells[left_pos].1 = promoted;
        }
    }
    Ok(())
}

/// After merging children `pos` and `pos+1` into the page of child
/// `pos` (`merged_id`), removes the separator at `pos` and rewires the
/// parent's child pointers.
fn remove_child(parent: &mut InteriorNode, pos: usize, merged_id: PageId) {
    let n = parent.cells.len();
    if pos + 1 < n {
        parent.cells[pos + 1].0 = merged_id;
        parent.cells.remove(pos);
    } else {
        // The right partner was the rightmost child.
        parent.rightmost = merged_id;
        parent.cells.remove(pos);
    }
}

fn free_subtree(txn: &mut WriteTxn, id: PageId, free_self: bool) -> Result<()> {
    let p = fetch_node(txn, id)?;
    match p.page_type() {
        page_type::BTREE_LEAF => {
            let leaf = LeafNode::parse(&p);
            drop(p);
            for (_, v) in leaf.cells {
                if let OwnedVal::Overflow { head, .. } = v {
                    free_overflow(txn, head)?;
                }
            }
        }
        page_type::BTREE_INTERIOR => {
            let interior = InteriorNode::parse(&p);
            drop(p);
            for (child, _) in &interior.cells {
                free_subtree(txn, *child, true)?;
            }
            free_subtree(txn, interior.rightmost, true)?;
        }
        t => {
            return Err(StorageError::Corrupt(format!(
                "page {id}: unexpected type {t} in free"
            )))
        }
    }
    if free_self {
        txn.free_page(id)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Store, StoreOptions, SyncMode};

    fn mem_store() -> (tempfile::TempDir, Store) {
        let dir = tempfile::tempdir().unwrap();
        let store = Store::create(
            dir.path().join("db"),
            StoreOptions {
                sync: SyncMode::Off,
                ..Default::default()
            },
        )
        .unwrap();
        (dir, store)
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key-{i:08}").into_bytes()
    }

    fn val(i: u32) -> Vec<u8> {
        format!("value-{i}-{}", "x".repeat((i % 37) as usize)).into_bytes()
    }

    #[test]
    fn insert_get_delete_small() {
        let (_d, store) = mem_store();
        let mut txn = store.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        assert_eq!(tree.insert(&mut txn, b"a", b"1").unwrap(), None);
        assert_eq!(tree.insert(&mut txn, b"b", b"2").unwrap(), None);
        assert_eq!(
            tree.insert(&mut txn, b"a", b"1new").unwrap(),
            Some(b"1".to_vec())
        );
        assert_eq!(tree.get(&txn, b"a").unwrap(), Some(b"1new".to_vec()));
        assert_eq!(tree.get(&txn, b"zz").unwrap(), None);
        assert_eq!(tree.delete(&mut txn, b"a").unwrap(), Some(b"1new".to_vec()));
        assert_eq!(tree.delete(&mut txn, b"a").unwrap(), None);
        assert_eq!(tree.get(&txn, b"a").unwrap(), None);
        assert_eq!(tree.get(&txn, b"b").unwrap(), Some(b"2".to_vec()));
        txn.commit().unwrap();
    }

    #[test]
    fn many_inserts_split_and_persist() {
        let (_d, store) = mem_store();
        let tree;
        {
            let mut txn = store.begin_write().unwrap();
            tree = BTree::create(&mut txn).unwrap();
            for i in 0..5000 {
                tree.insert(&mut txn, &key(i), &val(i)).unwrap();
            }
            txn.set_root(0, tree.root());
            txn.commit().unwrap();
        }
        let r = store.begin_read();
        assert!(tree.depth(&r).unwrap() >= 2, "tree must have split");
        assert_eq!(tree.count(&r).unwrap(), 5000);
        for i in (0..5000).step_by(97) {
            assert_eq!(tree.get(&r, &key(i)).unwrap(), Some(val(i)));
        }
    }

    #[test]
    fn reverse_and_shuffled_insert_orders() {
        for mode in 0..3 {
            let (_d, store) = mem_store();
            let mut txn = store.begin_write().unwrap();
            let tree = BTree::create(&mut txn).unwrap();
            let mut order: Vec<u32> = (0..2000).collect();
            match mode {
                0 => order.reverse(),
                1 => {
                    // Deterministic shuffle via multiplication hash.
                    order.sort_by_key(|i| i.wrapping_mul(2654435761) % 4096);
                }
                _ => {}
            }
            for &i in &order {
                tree.insert(&mut txn, &key(i), &val(i)).unwrap();
            }
            assert_eq!(tree.count(&txn).unwrap(), 2000);
            for i in 0..2000 {
                assert_eq!(
                    tree.get(&txn, &key(i)).unwrap(),
                    Some(val(i)),
                    "mode {mode}"
                );
            }
            txn.commit().unwrap();
        }
    }

    #[test]
    fn large_values_use_overflow_chains() {
        let (_d, store) = mem_store();
        let mut txn = store.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        // 2 KiB (a 512-d f32 vector) and 12 KiB (multi-page chain).
        let v2k = vec![7u8; 2048];
        let v12k: Vec<u8> = (0..12_288u32).map(|i| (i % 251) as u8).collect();
        tree.insert(&mut txn, b"small", b"inline").unwrap();
        tree.insert(&mut txn, b"two-k", &v2k).unwrap();
        tree.insert(&mut txn, b"twelve-k", &v12k).unwrap();
        assert_eq!(tree.get(&txn, b"two-k").unwrap(), Some(v2k.clone()));
        assert_eq!(tree.get(&txn, b"twelve-k").unwrap(), Some(v12k.clone()));
        // Replacing an overflow value frees its chain for reuse.
        let pages_before = txn.page_count();
        assert_eq!(
            tree.insert(&mut txn, b"twelve-k", b"tiny").unwrap(),
            Some(v12k)
        );
        let c = txn.allocate_page().unwrap(); // should reuse a freed page
        assert!(c < pages_before, "freed overflow pages are reused");
        txn.commit().unwrap();
    }

    #[test]
    fn delete_everything_rebalances_to_empty() {
        let (_d, store) = mem_store();
        let mut txn = store.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        let n = 3000u32;
        for i in 0..n {
            tree.insert(&mut txn, &key(i), &val(i)).unwrap();
        }
        assert!(tree.depth(&txn).unwrap() >= 2);
        // Delete in an interleaved order to exercise merges on both
        // leaf and interior levels.
        for i in (0..n).step_by(2) {
            assert!(tree.delete(&mut txn, &key(i)).unwrap().is_some());
        }
        for i in (1..n).step_by(2) {
            assert!(tree.delete(&mut txn, &key(i)).unwrap().is_some());
        }
        assert_eq!(tree.count(&txn).unwrap(), 0);
        assert_eq!(tree.depth(&txn).unwrap(), 1, "tree collapsed to a leaf");
        txn.commit().unwrap();
    }

    #[test]
    fn mixed_ops_match_btreemap_model() {
        let (_d, store) = mem_store();
        let mut txn = store.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        let mut model = std::collections::BTreeMap::<Vec<u8>, Vec<u8>>::new();
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..8000 {
            let op = next() % 10;
            let k = key(next() % 700);
            if op < 6 {
                let v = val(next() % 1000);
                let a = tree.insert(&mut txn, &k, &v).unwrap();
                let b = model.insert(k, v);
                assert_eq!(a, b);
            } else if op < 9 {
                let a = tree.delete(&mut txn, &k).unwrap();
                let b = model.remove(&k);
                assert_eq!(a, b);
            } else {
                let a = tree.get(&txn, &k).unwrap();
                let b = model.get(&k).cloned();
                assert_eq!(a, b);
            }
        }
        assert_eq!(tree.count(&txn).unwrap(), model.len() as u64);
        for (k, v) in &model {
            assert_eq!(tree.get(&txn, k).unwrap().as_ref(), Some(v));
        }
        txn.commit().unwrap();
    }

    #[test]
    fn clear_frees_pages_for_reuse() {
        let (_d, store) = mem_store();
        let mut txn = store.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        for i in 0..2000 {
            tree.insert(&mut txn, &key(i), &val(i)).unwrap();
        }
        txn.commit().unwrap();
        let pages_full = store.page_count();

        let mut txn = store.begin_write().unwrap();
        tree.clear(&mut txn).unwrap();
        assert_eq!(tree.count(&txn).unwrap(), 0);
        txn.commit().unwrap();
        assert!(store.freelist_len() > 0, "cleared pages land on freelist");

        // Re-filling reuses freed pages rather than growing the file.
        let mut txn = store.begin_write().unwrap();
        for i in 0..2000 {
            tree.insert(&mut txn, &key(i), &val(i)).unwrap();
        }
        txn.commit().unwrap();
        assert!(
            store.page_count() <= pages_full + 2,
            "refill reuses freelist: {} vs {}",
            store.page_count(),
            pages_full
        );
    }

    #[test]
    fn key_too_large_is_rejected() {
        let (_d, store) = mem_store();
        let mut txn = store.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        let big = vec![1u8; MAX_KEY_LEN + 1];
        assert!(matches!(
            tree.insert(&mut txn, &big, b"v"),
            Err(StorageError::KeyTooLarge(_))
        ));
        // Exactly at the limit is fine.
        let ok = vec![1u8; MAX_KEY_LEN];
        tree.insert(&mut txn, &ok, b"v").unwrap();
        assert_eq!(tree.get(&txn, &ok).unwrap(), Some(b"v".to_vec()));
    }

    #[test]
    fn prefix_leaf_pages_covers_all_matching_keys() {
        let (_d, store) = mem_store();
        let mut txn = store.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        for p in 0..4u32 {
            for i in 0..2000u32 {
                tree.insert(
                    &mut txn,
                    format!("p{p}-{i:06}").as_bytes(),
                    format!("v{p}-{i}").as_bytes(),
                )
                .unwrap();
            }
        }
        txn.commit().unwrap();
        let r = store.begin_read();
        assert!(tree.depth(&r).unwrap() >= 2);

        let ids = tree.prefix_leaf_pages(&r, b"p1-", usize::MAX).unwrap();
        assert!(!ids.is_empty());
        // Every key under the prefix must live in one of the returned
        // leaves: reading them back reassembles the full key set.
        let mut found = std::collections::BTreeSet::new();
        for id in &ids {
            let p = fetch_node(&r, *id).unwrap();
            assert_eq!(p.page_type(), page_type::BTREE_LEAF);
            for i in 0..node::ncells(&p) {
                let k = node::leaf_key(&p, i);
                if k.starts_with(b"p1-") {
                    found.insert(k.to_vec());
                }
            }
        }
        assert_eq!(found.len(), 2000, "all prefix keys covered");

        // The cap bounds the result.
        assert_eq!(tree.prefix_leaf_pages(&r, b"p1-", 3).unwrap().len(), 3);
        assert!(tree.prefix_leaf_pages(&r, b"p1-", 0).unwrap().is_empty());
    }

    #[test]
    fn prefix_leaf_pages_single_leaf_tree_returns_root() {
        let (_d, store) = mem_store();
        let mut txn = store.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        tree.insert(&mut txn, b"a", b"1").unwrap();
        txn.commit().unwrap();
        let r = store.begin_read();
        assert_eq!(
            tree.prefix_leaf_pages(&r, b"a", usize::MAX).unwrap(),
            vec![tree.root()]
        );
    }

    #[test]
    fn destroy_returns_all_pages() {
        let (_d, store) = mem_store();
        let mut txn = store.begin_write().unwrap();
        let before_alloc = txn.page_count();
        let tree = BTree::create(&mut txn).unwrap();
        for i in 0..1500 {
            tree.insert(&mut txn, &key(i), &vec![9u8; 3000]).unwrap();
        }
        let after_fill = txn.page_count();
        assert!(after_fill > before_alloc + 100);
        tree.destroy(&mut txn).unwrap();
        txn.commit().unwrap();
        // All tree pages (incl. overflow chains) are on the freelist.
        assert_eq!(
            store.freelist_len(),
            after_fill - before_alloc,
            "every allocated page was freed"
        );
    }
}
