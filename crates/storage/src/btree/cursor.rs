//! Forward range scans over a B+tree.
//!
//! A cursor descends once to the first qualifying leaf and then walks
//! the leaf sibling chain, so a partition scan (the inner loop of the
//! paper's Algorithm 2) touches each leaf page exactly once and in
//! on-disk order — this is the data-locality property the clustered
//! layout exists to provide.

use std::ops::Bound;
use std::sync::Arc;

use crate::error::Result;
use crate::page::{page_type, PageData, PageId};
use crate::store::PageRead;

use super::node;
use super::{fetch_node, fetch_node_scan, read_val_scan, BTree};

/// A forward iterator over `(key, value)` pairs in key order.
pub struct Cursor<'r, R: PageRead + ?Sized> {
    reader: &'r R,
    /// Current leaf image (kept alive while iterating its cells).
    leaf: Option<Arc<PageData>>,
    /// Next cell index within the current leaf.
    idx: usize,
    /// Exclusive/inclusive upper bound.
    end: Bound<Vec<u8>>,
    /// Set after the first bound violation or I/O error.
    done: bool,
}

impl BTree {
    /// Scans the whole tree in key order.
    pub fn scan_all<'r, R: PageRead + ?Sized>(&self, reader: &'r R) -> Result<Cursor<'r, R>> {
        self.range(reader, Bound::Unbounded, Bound::Unbounded)
    }

    /// Scans keys in `[start, end)`.
    pub fn scan_range<'r, R: PageRead + ?Sized>(
        &self,
        reader: &'r R,
        start: &[u8],
        end: &[u8],
    ) -> Result<Cursor<'r, R>> {
        self.range(
            reader,
            Bound::Included(start.to_vec()),
            Bound::Excluded(end.to_vec()),
        )
    }

    /// Scans keys beginning with `prefix`.
    pub fn scan_prefix<'r, R: PageRead + ?Sized>(
        &self,
        reader: &'r R,
        prefix: &[u8],
    ) -> Result<Cursor<'r, R>> {
        let end = match prefix_successor(prefix) {
            Some(s) => Bound::Excluded(s),
            None => Bound::Unbounded,
        };
        self.range(reader, Bound::Included(prefix.to_vec()), end)
    }

    /// General range scan.
    pub fn range<'r, R: PageRead + ?Sized>(
        &self,
        reader: &'r R,
        start: Bound<Vec<u8>>,
        end: Bound<Vec<u8>>,
    ) -> Result<Cursor<'r, R>> {
        // Descend to the leaf that would contain the start bound. The
        // descent (and the first leaf) uses the point hint: interior
        // pages are the reusable working set the pool protects, and
        // one point-admitted leaf per scan cannot displace it.
        let seek_key: &[u8] = match &start {
            Bound::Included(k) | Bound::Excluded(k) => k,
            Bound::Unbounded => &[],
        };
        let mut id: PageId = self.root();
        let leaf = loop {
            let p = fetch_node(reader, id)?;
            match p.page_type() {
                page_type::BTREE_INTERIOR => id = node::interior_descend(&p, seek_key),
                _ => break p,
            }
        };
        let idx = match &start {
            Bound::Unbounded => 0,
            Bound::Included(k) => match node::leaf_search(&leaf, k) {
                Ok(i) | Err(i) => i,
            },
            Bound::Excluded(k) => match node::leaf_search(&leaf, k) {
                Ok(i) => i + 1,
                Err(i) => i,
            },
        };
        Ok(Cursor {
            reader,
            leaf: Some(leaf),
            idx,
            end,
            done: false,
        })
    }
}

/// Smallest byte string strictly greater than every string with the
/// given prefix, or `None` if the prefix is all `0xFF`.
pub fn prefix_successor(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut s = prefix.to_vec();
    while let Some(&last) = s.last() {
        if last == 0xFF {
            s.pop();
        } else {
            *s.last_mut().unwrap() += 1;
            return Some(s);
        }
    }
    None
}

impl<R: PageRead + ?Sized> Cursor<'_, R> {
    fn within_end(&self, key: &[u8]) -> bool {
        match &self.end {
            Bound::Unbounded => true,
            Bound::Included(e) => key <= e.as_slice(),
            Bound::Excluded(e) => key < e.as_slice(),
        }
    }

    fn advance(&mut self) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        loop {
            let Some(leaf) = &self.leaf else {
                return Ok(None);
            };
            if self.idx < node::ncells(leaf) {
                let key = node::leaf_key(leaf, self.idx);
                if !self.within_end(key) {
                    self.done = true;
                    return Ok(None);
                }
                let key = key.to_vec();
                // Scan-hinted: cursor reads are sequential by
                // construction, so leaves and their overflow chains
                // must not displace the pool's protected segment.
                let value = read_val_scan(self.reader, node::leaf_val(leaf, self.idx))?;
                self.idx += 1;
                return Ok(Some((key, value)));
            }
            // Exhausted this leaf: follow the sibling chain with the
            // scan admission hint.
            let next = node::right_ptr(leaf);
            if next == 0 {
                self.leaf = None;
                return Ok(None);
            }
            self.leaf = Some(fetch_node_scan(self.reader, next)?);
            self.idx = 0;
        }
    }
}

impl<R: PageRead + ?Sized> Iterator for Cursor<'_, R> {
    type Item = Result<(Vec<u8>, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.advance() {
            Ok(Some(kv)) => Some(Ok(kv)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Store, StoreOptions, SyncMode};

    fn setup(n: u32) -> (tempfile::TempDir, Store, BTree) {
        let dir = tempfile::tempdir().unwrap();
        let store = Store::create(
            dir.path().join("db"),
            StoreOptions {
                sync: SyncMode::Off,
                ..Default::default()
            },
        )
        .unwrap();
        let mut txn = store.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        for i in 0..n {
            tree.insert(
                &mut txn,
                format!("k{i:06}").as_bytes(),
                format!("v{i}").as_bytes(),
            )
            .unwrap();
        }
        txn.commit().unwrap();
        (dir, store, tree)
    }

    #[test]
    fn full_scan_in_order() {
        let (_d, store, tree) = setup(3000);
        let r = store.begin_read();
        let mut prev: Option<Vec<u8>> = None;
        let mut count = 0;
        for kv in tree.scan_all(&r).unwrap() {
            let (k, v) = kv.unwrap();
            if let Some(p) = &prev {
                assert!(*p < k, "keys strictly ascending");
            }
            assert!(v.starts_with(b"v"));
            prev = Some(k);
            count += 1;
        }
        assert_eq!(count, 3000);
    }

    #[test]
    fn range_scan_bounds() {
        let (_d, store, tree) = setup(100);
        let r = store.begin_read();
        let collect = |start: Bound<Vec<u8>>, end: Bound<Vec<u8>>| -> Vec<String> {
            tree.range(&r, start, end)
                .unwrap()
                .map(|kv| String::from_utf8(kv.unwrap().0).unwrap())
                .collect()
        };
        let got = collect(
            Bound::Included(b"k000010".to_vec()),
            Bound::Excluded(b"k000013".to_vec()),
        );
        assert_eq!(got, vec!["k000010", "k000011", "k000012"]);
        let got = collect(
            Bound::Excluded(b"k000010".to_vec()),
            Bound::Included(b"k000013".to_vec()),
        );
        assert_eq!(got, vec!["k000011", "k000012", "k000013"]);
        // Start between keys.
        let got = collect(
            Bound::Included(b"k0000105".to_vec()),
            Bound::Excluded(b"k000013".to_vec()),
        );
        assert_eq!(got, vec!["k000011", "k000012"]);
        // Empty range.
        let got = collect(
            Bound::Included(b"k000050".to_vec()),
            Bound::Excluded(b"k000050".to_vec()),
        );
        assert!(got.is_empty());
    }

    #[test]
    fn range_scan_spans_leaves() {
        let (_d, store, tree) = setup(5000);
        let r = store.begin_read();
        assert!(tree.depth(&r).unwrap() >= 2);
        let got: Vec<_> = tree
            .scan_range(&r, b"k001000", b"k004000")
            .unwrap()
            .map(|kv| kv.unwrap())
            .collect();
        assert_eq!(got.len(), 3000);
        assert_eq!(got[0].0, b"k001000".to_vec());
        assert_eq!(got.last().unwrap().0, b"k003999".to_vec());
    }

    #[test]
    fn prefix_scan() {
        let dir = tempfile::tempdir().unwrap();
        let store = Store::create(
            dir.path().join("db"),
            StoreOptions {
                sync: SyncMode::Off,
                ..Default::default()
            },
        )
        .unwrap();
        let mut txn = store.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        for k in ["apple", "apricot", "banana", "band", "bandana", "cat"] {
            tree.insert(&mut txn, k.as_bytes(), b"x").unwrap();
        }
        txn.commit().unwrap();
        let r = store.begin_read();
        let got: Vec<String> = tree
            .scan_prefix(&r, b"ban")
            .unwrap()
            .map(|kv| String::from_utf8(kv.unwrap().0).unwrap())
            .collect();
        assert_eq!(got, vec!["banana", "band", "bandana"]);
        let got: Vec<String> = tree
            .scan_prefix(&r, b"ap")
            .unwrap()
            .map(|kv| String::from_utf8(kv.unwrap().0).unwrap())
            .collect();
        assert_eq!(got, vec!["apple", "apricot"]);
    }

    #[test]
    fn prefix_successor_edge_cases() {
        assert_eq!(prefix_successor(b"abc"), Some(b"abd".to_vec()));
        assert_eq!(prefix_successor(&[0x01, 0xFF]), Some(vec![0x02]));
        assert_eq!(prefix_successor(&[0xFF, 0xFF]), None);
        assert_eq!(prefix_successor(b""), None);
    }

    #[test]
    fn scan_empty_tree() {
        let (_d, store, tree) = setup(0);
        let r = store.begin_read();
        assert_eq!(tree.scan_all(&r).unwrap().count(), 0);
    }

    #[test]
    fn scan_reads_overflow_values() {
        let dir = tempfile::tempdir().unwrap();
        let store = Store::create(
            dir.path().join("db"),
            StoreOptions {
                sync: SyncMode::Off,
                ..Default::default()
            },
        )
        .unwrap();
        let mut txn = store.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        let big = vec![0x5A; 9000];
        tree.insert(&mut txn, b"big", &big).unwrap();
        tree.insert(&mut txn, b"small", b"s").unwrap();
        txn.commit().unwrap();
        let r = store.begin_read();
        let all: Vec<_> = tree.scan_all(&r).unwrap().map(|kv| kv.unwrap()).collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].1, big);
        assert_eq!(all[1].1, b"s".to_vec());
    }
}
