//! On-page layout of B+tree nodes.
//!
//! Both node kinds use a slotted-page layout: a fixed header, a sorted
//! array of 2-byte cell pointers growing downward from the header, and
//! cell content growing upward from the end of the page.
//!
//! ```text
//! leaf cell:      key_len:u16 | kind:u8 | [val_len:u16 | key | val]          (inline)
//!                 key_len:u16 | kind:u8 | total:u32 | head:u32 | key         (overflow)
//! interior cell:  child:u32 | key_len:u16 | key
//! ```
//!
//! Interior separator convention: a cell `(child, key)` means the
//! subtree under `child` holds keys `<= key`; keys greater than every
//! separator live under the node's rightmost child.
//!
//! Reads (`search`, `cell_key`, `leaf_val`) operate directly on the
//! page image with zero allocation — this is the ANN query hot path.
//! Mutations materialize the node ([`LeafNode::parse`] /
//! [`InteriorNode::parse`]), edit the cell vector, and rewrite the page
//! ([`LeafNode::write`]); a 4 KiB rebuild is cheap and makes split /
//! merge / redistribute logic straightforward to verify.

use crate::error::{Result, StorageError};
use crate::page::{page_type, PageData, PageId, PAGE_SIZE};

/// Node header size (both kinds).
pub const NODE_HDR: usize = 16;
/// Usable bytes per node (cell pointers + cell content).
pub const NODE_CAPACITY: usize = PAGE_SIZE - NODE_HDR;
/// Maximum permitted key length. Guarantees an interior node always
/// fits at least three separators, which keeps splits well-defined.
pub const MAX_KEY_LEN: usize = 1024;
/// Leaf cells larger than this spill their value to an overflow chain,
/// guaranteeing at least four cells per leaf.
pub const MAX_INLINE_CELL: usize = NODE_CAPACITY / 4;
/// A node is underfull (eligible for merge) below this usage.
pub const UNDERFLOW_BYTES: usize = NODE_CAPACITY / 4;

// Header field offsets (shared by leaf and interior nodes).
const OFF_TYPE: usize = 0;
const OFF_NCELLS: usize = 2;
const OFF_CONTENT_START: usize = 4;
// 6..8 reserved.
/// Leaf: right sibling page (0 = none). Interior: rightmost child.
const OFF_RIGHT: usize = 8;
// 12..16 reserved.

const PTR_ARRAY: usize = NODE_HDR;

/// Per-cell byte overhead (pointer + fixed header) for a leaf inline cell.
pub const LEAF_INLINE_OVERHEAD: usize = 2 + 5;
/// Per-cell byte overhead for a leaf overflow cell.
pub const LEAF_OVERFLOW_OVERHEAD: usize = 2 + 11;
/// Per-cell byte overhead for an interior cell.
pub const INTERIOR_OVERHEAD: usize = 2 + 6;

/// A leaf value, either stored inline or spilled to an overflow chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OwnedVal {
    Inline(Vec<u8>),
    Overflow { total: u32, head: PageId },
}

impl OwnedVal {
    /// Bytes this value contributes to its cell.
    pub fn cell_bytes(&self, key_len: usize) -> usize {
        match self {
            OwnedVal::Inline(v) => LEAF_INLINE_OVERHEAD + key_len + v.len(),
            OwnedVal::Overflow { .. } => LEAF_OVERFLOW_OVERHEAD + key_len,
        }
    }
}

/// Borrowed view of a leaf value read directly from a page.
#[derive(Debug, Clone, Copy)]
pub enum ValRef<'a> {
    Inline(&'a [u8]),
    Overflow { total: u32, head: PageId },
}

// ---------------------------------------------------------------------------
// Zero-copy page accessors (query hot path)
// ---------------------------------------------------------------------------

/// Number of cells in a node.
#[inline]
pub fn ncells(p: &PageData) -> usize {
    p.get_u16(OFF_NCELLS) as usize
}

/// Leaf right-sibling / interior rightmost-child pointer.
#[inline]
pub fn right_ptr(p: &PageData) -> PageId {
    p.get_u32(OFF_RIGHT)
}

#[inline]
fn cell_offset(p: &PageData, i: usize) -> usize {
    p.get_u16(PTR_ARRAY + 2 * i) as usize
}

/// Key of cell `i` in a leaf node.
#[inline]
pub fn leaf_key(p: &PageData, i: usize) -> &[u8] {
    let o = cell_offset(p, i);
    let klen = p.get_u16(o) as usize;
    let kind = p[o + 2];
    let kstart = if kind == 0 { o + 5 } else { o + 11 };
    &p[kstart..kstart + klen]
}

/// Value of cell `i` in a leaf node.
#[inline]
pub fn leaf_val(p: &PageData, i: usize) -> ValRef<'_> {
    let o = cell_offset(p, i);
    let klen = p.get_u16(o) as usize;
    if p[o + 2] == 0 {
        let vlen = p.get_u16(o + 3) as usize;
        let vstart = o + 5 + klen;
        ValRef::Inline(&p[vstart..vstart + vlen])
    } else {
        ValRef::Overflow {
            total: p.get_u32(o + 3),
            head: p.get_u32(o + 7),
        }
    }
}

/// Key of cell `i` in an interior node.
#[inline]
pub fn interior_key(p: &PageData, i: usize) -> &[u8] {
    let o = cell_offset(p, i);
    let klen = p.get_u16(o + 4) as usize;
    &p[o + 6..o + 6 + klen]
}

/// Child pointer of cell `i` in an interior node.
#[inline]
pub fn interior_child(p: &PageData, i: usize) -> PageId {
    p.get_u32(cell_offset(p, i))
}

/// Binary search in a leaf: `Ok(i)` if cell `i` holds `key`, else
/// `Err(i)` with the insertion position.
pub fn leaf_search(p: &PageData, key: &[u8]) -> std::result::Result<usize, usize> {
    let n = ncells(p);
    let mut lo = 0;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        match leaf_key(p, mid).cmp(key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

/// Descend decision in an interior node: index of the first separator
/// `>= key` (whose child must be followed), or `ncells` for the
/// rightmost child.
pub fn interior_descend_index(p: &PageData, key: &[u8]) -> usize {
    let n = ncells(p);
    let mut lo = 0;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if interior_key(p, mid) < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Child page to follow for `key`.
pub fn interior_descend(p: &PageData, key: &[u8]) -> PageId {
    let i = interior_descend_index(p, key);
    if i == ncells(p) {
        right_ptr(p)
    } else {
        interior_child(p, i)
    }
}

/// Checks the node type byte, returning a corruption error on mismatch.
pub fn expect_type(p: &PageData, want: u8, page: PageId) -> Result<()> {
    if p.page_type() != want {
        return Err(StorageError::Corrupt(format!(
            "page {page}: expected node type {want}, found {}",
            p.page_type()
        )));
    }
    Ok(())
}

/// Structural validation of a node page: every cell pointer, and every
/// length those cells imply, must stay inside the page. Once a page
/// passes, the zero-copy accessors above cannot slice out of bounds —
/// so corrupted bytes surface as [`StorageError::Corrupt`] at the
/// fetch boundary (where `fsck` and recovery can report them) instead
/// of panicking mid-traversal. `O(cells)` of u16 reads per call.
pub fn validate(p: &PageData, page: PageId) -> Result<()> {
    let corrupt = |what: &str| {
        Err(StorageError::Corrupt(format!(
            "page {page}: malformed node ({what})"
        )))
    };
    let n = ncells(p);
    let content_floor = PTR_ARRAY + 2 * n;
    if content_floor > PAGE_SIZE {
        return corrupt("cell pointer array exceeds page");
    }
    let kind = p.page_type();
    for i in 0..n {
        let o = cell_offset(p, i);
        if o < content_floor {
            return corrupt("cell offset inside pointer array");
        }
        match kind {
            page_type::BTREE_LEAF => {
                if o + 5 > PAGE_SIZE {
                    return corrupt("leaf cell header exceeds page");
                }
                let klen = p.get_u16(o) as usize;
                let end = match p[o + 2] {
                    0 => o + 5 + klen + p.get_u16(o + 3) as usize,
                    1 => o + 11 + klen,
                    _ => return corrupt("unknown leaf cell kind"),
                };
                if end > PAGE_SIZE {
                    return corrupt("leaf cell exceeds page");
                }
            }
            page_type::BTREE_INTERIOR => {
                if o + 6 > PAGE_SIZE {
                    return corrupt("interior cell header exceeds page");
                }
                if o + 6 + p.get_u16(o + 4) as usize > PAGE_SIZE {
                    return corrupt("interior cell exceeds page");
                }
            }
            t => {
                return Err(StorageError::Corrupt(format!(
                    "page {page}: unexpected type {t} during descent"
                )))
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Materialized nodes (mutation path)
// ---------------------------------------------------------------------------

/// A fully decoded leaf node.
#[derive(Debug, Clone, Default)]
pub struct LeafNode {
    pub cells: Vec<(Vec<u8>, OwnedVal)>,
    pub right_sibling: PageId,
}

impl LeafNode {
    /// Decodes a leaf page.
    pub fn parse(p: &PageData) -> LeafNode {
        debug_assert_eq!(p.page_type(), page_type::BTREE_LEAF);
        let n = ncells(p);
        let mut cells = Vec::with_capacity(n);
        for i in 0..n {
            let key = leaf_key(p, i).to_vec();
            let val = match leaf_val(p, i) {
                ValRef::Inline(v) => OwnedVal::Inline(v.to_vec()),
                ValRef::Overflow { total, head } => OwnedVal::Overflow { total, head },
            };
            cells.push((key, val));
        }
        LeafNode {
            cells,
            right_sibling: right_ptr(p),
        }
    }

    /// Total bytes the cells occupy (pointers + content).
    pub fn used_bytes(&self) -> usize {
        self.cells.iter().map(|(k, v)| v.cell_bytes(k.len())).sum()
    }

    /// Whether the node fits in one page.
    pub fn fits(&self) -> bool {
        self.used_bytes() <= NODE_CAPACITY
    }

    /// Serializes the node into `p`.
    pub fn write(&self, p: &mut PageData) {
        debug_assert!(self.fits(), "leaf overflow must be split before write");
        p.fill(0);
        p[OFF_TYPE] = page_type::BTREE_LEAF;
        p.put_u16(OFF_NCELLS, self.cells.len() as u16);
        p.put_u32(OFF_RIGHT, self.right_sibling);
        let mut end = PAGE_SIZE;
        for (i, (key, val)) in self.cells.iter().enumerate() {
            let body = match val {
                OwnedVal::Inline(v) => 5 + key.len() + v.len(),
                OwnedVal::Overflow { .. } => 11 + key.len(),
            };
            end -= body;
            let o = end;
            p.put_u16(o, key.len() as u16);
            match val {
                OwnedVal::Inline(v) => {
                    p[o + 2] = 0;
                    p.put_u16(o + 3, v.len() as u16);
                    p[o + 5..o + 5 + key.len()].copy_from_slice(key);
                    p[o + 5 + key.len()..o + 5 + key.len() + v.len()].copy_from_slice(v);
                }
                OwnedVal::Overflow { total, head } => {
                    p[o + 2] = 1;
                    p.put_u32(o + 3, *total);
                    p.put_u32(o + 7, *head);
                    p[o + 11..o + 11 + key.len()].copy_from_slice(key);
                }
            }
            p.put_u16(PTR_ARRAY + 2 * i, o as u16);
        }
        p.put_u16(OFF_CONTENT_START, end as u16);
    }

    /// Splits the cell vector so both halves fit comfortably; returns
    /// the right half. `self` keeps the left half and its separator is
    /// `self.cells.last().key`.
    pub fn split_off(&mut self) -> LeafNode {
        let total = self.used_bytes();
        let mut acc = 0usize;
        let mut cut = 0usize;
        for (i, (k, v)) in self.cells.iter().enumerate() {
            acc += v.cell_bytes(k.len());
            if acc >= total / 2 {
                cut = i + 1;
                break;
            }
        }
        cut = cut.clamp(1, self.cells.len() - 1);
        let right_cells = self.cells.split_off(cut);
        let right = LeafNode {
            cells: right_cells,
            right_sibling: self.right_sibling,
        };
        // Caller links self.right_sibling to the new page id.
        right
    }
}

/// A fully decoded interior node.
#[derive(Debug, Clone, Default)]
pub struct InteriorNode {
    /// `(child, separator)`: `child` holds keys `<= separator`.
    pub cells: Vec<(PageId, Vec<u8>)>,
    pub rightmost: PageId,
}

impl InteriorNode {
    /// Decodes an interior page.
    pub fn parse(p: &PageData) -> InteriorNode {
        debug_assert_eq!(p.page_type(), page_type::BTREE_INTERIOR);
        let n = ncells(p);
        let mut cells = Vec::with_capacity(n);
        for i in 0..n {
            cells.push((interior_child(p, i), interior_key(p, i).to_vec()));
        }
        InteriorNode {
            cells,
            rightmost: right_ptr(p),
        }
    }

    /// Total bytes the cells occupy (pointers + content).
    pub fn used_bytes(&self) -> usize {
        self.cells
            .iter()
            .map(|(_, k)| INTERIOR_OVERHEAD + k.len())
            .sum()
    }

    /// Whether the node fits in one page.
    pub fn fits(&self) -> bool {
        self.used_bytes() <= NODE_CAPACITY
    }

    /// Serializes the node into `p`.
    pub fn write(&self, p: &mut PageData) {
        debug_assert!(self.fits(), "interior overflow must be split before write");
        p.fill(0);
        p[OFF_TYPE] = page_type::BTREE_INTERIOR;
        p.put_u16(OFF_NCELLS, self.cells.len() as u16);
        p.put_u32(OFF_RIGHT, self.rightmost);
        let mut end = PAGE_SIZE;
        for (i, (child, key)) in self.cells.iter().enumerate() {
            let body = 6 + key.len();
            end -= body;
            let o = end;
            p.put_u32(o, *child);
            p.put_u16(o + 4, key.len() as u16);
            p[o + 6..o + 6 + key.len()].copy_from_slice(key);
            p.put_u16(PTR_ARRAY + 2 * i, o as u16);
        }
        p.put_u16(OFF_CONTENT_START, end as u16);
    }

    /// Splits, returning `(promoted separator, right node)`. `self`
    /// keeps the left half.
    pub fn split_off(&mut self) -> (Vec<u8>, InteriorNode) {
        debug_assert!(self.cells.len() >= 3);
        let total = self.used_bytes();
        let mut acc = 0usize;
        let mut cut = 0usize;
        for (i, (_, k)) in self.cells.iter().enumerate() {
            acc += INTERIOR_OVERHEAD + k.len();
            if acc >= total / 2 {
                cut = i;
                break;
            }
        }
        cut = cut.clamp(1, self.cells.len() - 2);
        // cells[cut] is promoted: left keeps [0, cut), its rightmost
        // becomes cells[cut].child; right takes (cut, n).
        let mut tail = self.cells.split_off(cut);
        let (mid_child, mid_key) = tail.remove(0);
        let right = InteriorNode {
            cells: tail,
            rightmost: self.rightmost,
        };
        self.rightmost = mid_child;
        (mid_key, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_with(cells: Vec<(Vec<u8>, OwnedVal)>) -> PageData {
        let node = LeafNode {
            cells,
            right_sibling: 77,
        };
        let mut p = PageData::zeroed();
        node.write(&mut p);
        p
    }

    #[test]
    fn leaf_roundtrip() {
        let cells = vec![
            (b"apple".to_vec(), OwnedVal::Inline(b"1".to_vec())),
            (
                b"banana".to_vec(),
                OwnedVal::Overflow {
                    total: 9000,
                    head: 42,
                },
            ),
            (b"cherry".to_vec(), OwnedVal::Inline(vec![0xAB; 100])),
        ];
        let p = leaf_with(cells.clone());
        assert_eq!(p.page_type(), page_type::BTREE_LEAF);
        assert_eq!(ncells(&p), 3);
        assert_eq!(right_ptr(&p), 77);
        let parsed = LeafNode::parse(&p);
        assert_eq!(parsed.cells, cells);
        assert_eq!(parsed.right_sibling, 77);
        // Zero-copy accessors agree.
        assert_eq!(leaf_key(&p, 1), b"banana");
        match leaf_val(&p, 1) {
            ValRef::Overflow { total, head } => {
                assert_eq!((total, head), (9000, 42));
            }
            _ => panic!("expected overflow"),
        }
        match leaf_val(&p, 2) {
            ValRef::Inline(v) => assert_eq!(v, &[0xAB; 100][..]),
            _ => panic!("expected inline"),
        }
    }

    #[test]
    fn leaf_search_positions() {
        let p = leaf_with(vec![
            (b"b".to_vec(), OwnedVal::Inline(vec![])),
            (b"d".to_vec(), OwnedVal::Inline(vec![])),
            (b"f".to_vec(), OwnedVal::Inline(vec![])),
        ]);
        assert_eq!(leaf_search(&p, b"a"), Err(0));
        assert_eq!(leaf_search(&p, b"b"), Ok(0));
        assert_eq!(leaf_search(&p, b"c"), Err(1));
        assert_eq!(leaf_search(&p, b"f"), Ok(2));
        assert_eq!(leaf_search(&p, b"g"), Err(3));
    }

    #[test]
    fn interior_roundtrip_and_descend() {
        let node = InteriorNode {
            cells: vec![(10, b"dog".to_vec()), (20, b"mouse".to_vec())],
            rightmost: 30,
        };
        let mut p = PageData::zeroed();
        node.write(&mut p);
        let parsed = InteriorNode::parse(&p);
        assert_eq!(parsed.cells, node.cells);
        assert_eq!(parsed.rightmost, 30);
        // child holds keys <= separator.
        assert_eq!(interior_descend(&p, b"cat"), 10);
        assert_eq!(interior_descend(&p, b"dog"), 10);
        assert_eq!(interior_descend(&p, b"elk"), 20);
        assert_eq!(interior_descend(&p, b"mouse"), 20);
        assert_eq!(interior_descend(&p, b"zebra"), 30);
    }

    #[test]
    fn leaf_split_balances_bytes() {
        let mut node = LeafNode::default();
        for i in 0..100u32 {
            node.cells.push((
                format!("key{i:04}").into_bytes(),
                OwnedVal::Inline(vec![0u8; 30]),
            ));
        }
        node.right_sibling = 5;
        let total = node.used_bytes();
        let right = node.split_off();
        assert!(!node.cells.is_empty() && !right.cells.is_empty());
        assert_eq!(right.right_sibling, 5);
        let l = node.used_bytes();
        let r = right.used_bytes();
        assert_eq!(l + r, total);
        assert!(l.abs_diff(r) < total / 3, "split is roughly even");
        // Ordering preserved across the cut.
        assert!(node.cells.last().unwrap().0 < right.cells[0].0);
    }

    #[test]
    fn interior_split_promotes_middle() {
        let mut node = InteriorNode {
            cells: (0..10u32)
                .map(|i| (i + 100, format!("k{i:02}").into_bytes()))
                .collect(),
            rightmost: 999,
        };
        let (sep, right) = node.split_off();
        // Promoted separator is greater than everything left, less than
        // everything right.
        assert!(node.cells.iter().all(|(_, k)| k < &sep));
        assert!(right.cells.iter().all(|(_, k)| k > &sep));
        assert_eq!(right.rightmost, 999);
        // Left's rightmost is the promoted cell's child.
        let promoted_child = node.rightmost;
        assert!((100..110).contains(&promoted_child));
    }

    #[test]
    fn capacity_accounting_matches_layout() {
        // A node reporting `fits()` must serialize without panicking,
        // even at the boundary.
        let mut node = LeafNode::default();
        while node.used_bytes() + LEAF_INLINE_OVERHEAD + 8 + 64 <= NODE_CAPACITY {
            let i = node.cells.len();
            node.cells.push((
                format!("k{i:06}x").into_bytes(),
                OwnedVal::Inline(vec![1; 64]),
            ));
        }
        assert!(node.fits());
        let mut p = PageData::zeroed();
        node.write(&mut p);
        assert_eq!(ncells(&p), node.cells.len());
        let reparsed = LeafNode::parse(&p);
        assert_eq!(reparsed.cells.len(), node.cells.len());
    }

    #[test]
    fn expect_type_detects_mismatch() {
        let p = leaf_with(vec![]);
        assert!(expect_type(&p, page_type::BTREE_LEAF, 1).is_ok());
        assert!(expect_type(&p, page_type::BTREE_INTERIOR, 1).is_err());
    }
}
