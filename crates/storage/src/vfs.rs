//! The virtual file system boundary of the storage engine.
//!
//! Every byte the store reads or writes — the main database file and
//! the write-ahead log — flows through a [`Vfs`], mirroring SQLite's
//! VFS layer. Two implementations exist:
//!
//! * [`StdVfs`] — the default: thin positional-I/O wrappers over
//!   [`std::fs::File`]. The indirection is one virtual call in front of
//!   a syscall, unmeasurable against the I/O itself.
//! * [`crate::sim::SimVfs`] — an in-memory test backend that records
//!   every write and fsync and can deterministically inject crashes:
//!   stop after the Nth operation, tear the final write to a partial
//!   prefix, and — on a simulated power cut — drop any subset of
//!   writes not yet covered by an fsync. The crash-recovery harnesses
//!   (`crates/core/tests/crash_recovery.rs`, the storage
//!   failure-injection suite) are built on it.
//!
//! The trait is deliberately tiny (open/read_at/write_at/sync/
//! set_len/len): the store only ever does positional reads and writes
//! on two files, so anything POSIX-shaped — or purely in-memory — can
//! back it.

use std::fs::OpenOptions;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::Arc;

/// How [`Vfs::open`] should treat an existing (or missing) file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Open an existing file; error if it does not exist.
    Open,
    /// Create a new file; error if it already exists.
    CreateNew,
    /// Open, creating if missing and truncating existing content.
    CreateTruncate,
}

/// One open file: positional reads and writes plus durability control.
/// Handles are shared across reader threads (`pread`-style access), so
/// every method takes `&self`.
#[allow(clippy::len_without_is_empty)] // a file's length is a size, not a collection
pub trait VfsFile: Send + Sync {
    /// Fills `buf` from `offset`, erroring on short reads
    /// (`UnexpectedEof` past the end of the file).
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()>;
    /// Writes all of `buf` at `offset`, extending the file if needed.
    fn write_all_at(&self, buf: &[u8], offset: u64) -> io::Result<()>;
    /// Makes every prior write (and the file length) durable: the
    /// power-loss barrier. `fdatasync` semantics.
    fn sync(&self) -> io::Result<()>;
    /// Truncates or extends the file to `len` bytes.
    fn set_len(&self, len: u64) -> io::Result<()>;
    /// Current file length in bytes.
    fn len(&self) -> io::Result<u64>;
}

/// A file system implementation the store can run on.
pub trait Vfs: Send + Sync {
    /// Short name for diagnostics (`Debug` output of
    /// [`crate::StoreOptions`]).
    fn name(&self) -> &'static str;
    /// Opens `path` under `mode`.
    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn VfsFile>>;
    /// Whether `path` currently exists.
    fn exists(&self, path: &Path) -> bool;
}

/// The production VFS: [`std::fs::File`] with positional I/O.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

impl StdVfs {
    /// A shared handle to the default VFS.
    pub fn handle() -> Arc<dyn Vfs> {
        Arc::new(StdVfs)
    }
}

impl Vfs for StdVfs {
    fn name(&self) -> &'static str {
        "std"
    }

    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn VfsFile>> {
        let mut opts = OpenOptions::new();
        opts.read(true).write(true);
        match mode {
            OpenMode::Open => {}
            OpenMode::CreateNew => {
                opts.create_new(true);
            }
            OpenMode::CreateTruncate => {
                opts.create(true).truncate(true);
            }
        }
        Ok(Box::new(StdFile {
            file: opts.open(path)?,
        }))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

struct StdFile {
    file: std::fs::File,
}

impl VfsFile for StdFile {
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        self.file.read_exact_at(buf, offset)
    }

    fn write_all_at(&self, buf: &[u8], offset: u64) -> io::Result<()> {
        self.file.write_all_at(buf, offset)
    }

    fn sync(&self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_vfs_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("f");
        let vfs = StdVfs;
        assert!(!vfs.exists(&path));
        let f = vfs.open(&path, OpenMode::CreateNew).unwrap();
        f.write_all_at(b"hello", 3).unwrap();
        f.sync().unwrap();
        assert_eq!(f.len().unwrap(), 8);
        let mut buf = [0u8; 5];
        f.read_exact_at(&mut buf, 3).unwrap();
        assert_eq!(&buf, b"hello");
        f.set_len(4).unwrap();
        assert_eq!(f.len().unwrap(), 4);
        assert!(vfs.exists(&path));
        // CreateNew on an existing path fails; Open succeeds.
        assert!(vfs.open(&path, OpenMode::CreateNew).is_err());
        let f2 = vfs.open(&path, OpenMode::Open).unwrap();
        let mut b = [0u8; 1];
        f2.read_exact_at(&mut b, 3).unwrap();
        assert_eq!(&b, b"h");
        // Reads past the end error.
        assert!(f2.read_exact_at(&mut b, 100).is_err());
    }
}
