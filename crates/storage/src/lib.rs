//! `micronn-storage`: the transactional storage substrate of the MicroNN
//! reproduction.
//!
//! The MicroNN paper (§3.2) builds on SQLite in WAL mode for four
//! properties: page-granular disk residency, clustered B-tree storage,
//! write-ahead logging with snapshot-isolated readers and a single
//! serialized writer, and durable crash recovery. This crate implements
//! that substrate from scratch:
//!
//! * [`Store`] — a single-file page store with a page-image write-ahead
//!   log ([`wal`]), a bounded buffer pool ([`pool`]) with eviction and
//!   I/O accounting, and single-writer / multi-reader transactions with
//!   snapshot isolation ([`Store::begin_read`] / [`Store::begin_write`]).
//!   All file I/O flows through the [`vfs`] boundary: [`StdVfs`] in
//!   production, and the deterministic crash-injecting [`sim::SimVfs`]
//!   in the recovery harnesses.
//! * [`BTree`] — an ordered byte-key/byte-value B+tree with range scans,
//!   overflow chains for large values, and delete rebalancing. Tables in
//!   `micronn-rel` cluster rows on their encoded primary key through this
//!   tree, which is how the IVF partition locality of the paper is
//!   realized on disk.
//!
//! # Example
//!
//! ```
//! use micronn_storage::{PageRead, Store, StoreOptions, BTree};
//!
//! let dir = tempfile::tempdir().unwrap();
//! let store = Store::create(dir.path().join("db.mnn"), StoreOptions::default()).unwrap();
//!
//! // Writer: create a tree, insert, commit.
//! let mut txn = store.begin_write().unwrap();
//! let tree = BTree::create(&mut txn).unwrap();
//! tree.insert(&mut txn, b"hello", b"world").unwrap();
//! txn.set_root(0, tree.root());
//! txn.commit().unwrap();
//!
//! // Reader: snapshot-isolated lookup.
//! let read = store.begin_read();
//! let tree = BTree::open(read.root(0));
//! assert_eq!(tree.get(&read, b"hello").unwrap().as_deref(), Some(&b"world"[..]));
//! ```

pub mod btree;
pub mod checksum;
pub mod error;
pub mod page;
pub mod pool;
pub mod sim;
pub mod stats;
pub mod store;
pub mod vfs;
pub mod wal;

pub use btree::{BTree, Cursor};
pub use error::{Result, StorageError};
pub use page::{PageData, PageId, PAGE_SIZE};
pub use pool::Access;
pub use sim::{CrashPlan, PowerCut, SimVfs};
pub use stats::{IoStats, StoreStats};
pub use store::{PageRead, ReadTxn, Store, StoreOptions, SyncMode, WriteTxn, NUM_ROOTS};
pub use vfs::{OpenMode, StdVfs, Vfs, VfsFile};
