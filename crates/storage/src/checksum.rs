//! A fast non-cryptographic checksum used for WAL frame validation.
//!
//! During crash recovery the WAL is scanned front to back and frames
//! are accepted only while their checksums validate (and only up to the
//! last commit frame), mirroring SQLite's WAL recovery protocol. FNV-1a
//! is sufficient here: the threat model is torn writes / truncated
//! files, not adversarial corruption.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Computes the FNV-1a checksum of `data`, seeded with `seed` so that
/// frame headers and payloads chain into a single digest.
#[inline]
pub fn fnv1a(seed: u64, data: &[u8]) -> u64 {
    let mut h = if seed == 0 { FNV_OFFSET } else { seed };
    // Process 8 bytes at a time to keep the WAL commit path cheap; the
    // per-chunk fold preserves sensitivity to every byte.
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let v = u64::from_le_bytes(c.try_into().unwrap());
        h ^= v;
        h = h.wrapping_mul(FNV_PRIME);
    }
    for &b in chunks.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fnv1a(0, b"hello"), fnv1a(0, b"hello"));
    }

    #[test]
    fn sensitive_to_every_byte() {
        let base: Vec<u8> = (0..64).collect();
        let h0 = fnv1a(0, &base);
        for i in 0..base.len() {
            let mut corrupted = base.clone();
            corrupted[i] ^= 1;
            assert_ne!(fnv1a(0, &corrupted), h0, "flip at byte {i} undetected");
        }
    }

    #[test]
    fn sensitive_to_length() {
        assert_ne!(fnv1a(0, b"ab"), fnv1a(0, b"abc"));
        assert_ne!(fnv1a(0, b""), fnv1a(0, b"\0"));
    }

    #[test]
    fn seed_chains() {
        let h1 = fnv1a(0, b"header");
        let chained = fnv1a(h1, b"payload");
        assert_ne!(chained, fnv1a(0, b"payload"));
        // Chaining is deterministic.
        assert_eq!(chained, fnv1a(fnv1a(0, b"header"), b"payload"));
    }

    #[test]
    fn empty_input_with_seed_passthrough_still_hashes() {
        // Empty data returns the seed unchanged (or offset if seed==0);
        // callers always hash non-empty frames so this just documents
        // the behaviour.
        assert_eq!(fnv1a(42, b""), 42);
    }
}
