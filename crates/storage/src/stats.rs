//! I/O and cache accounting.
//!
//! The paper's evaluation leans heavily on I/O and memory counters:
//! Figure 5 (memory during query processing), Figure 6b (memory during
//! index construction), and Figure 10d (database row/page changes of
//! incremental vs full rebuild). All counters here are monotonically
//! increasing [`Counter`]s (relaxed atomics) so they can be sampled
//! cheaply from any thread and differenced around a measured region.
//!
//! The counters are `Arc`-shared [`micronn_telemetry::Counter`]s so a
//! store's traffic can be re-registered into a
//! [`micronn_telemetry::Registry`] (see [`IoStats::register_into`])
//! without double-counting: the registry and the store bump the same
//! atomics.

use std::sync::Arc;

use micronn_telemetry::{Counter, Registry};

/// Monotonic counters describing disk and cache traffic of a [`crate::Store`].
#[derive(Default)]
pub struct IoStats {
    /// Pages read from the main database file.
    pub main_reads: Arc<Counter>,
    /// Pages written to the main database file (checkpoints).
    pub main_writes: Arc<Counter>,
    /// Frames read from the WAL file.
    pub wal_reads: Arc<Counter>,
    /// Frames appended to the WAL file.
    pub wal_writes: Arc<Counter>,
    /// Buffer-pool hits.
    pub pool_hits: Arc<Counter>,
    /// Buffer-pool misses (page had to be fetched from disk).
    pub pool_misses: Arc<Counter>,
    /// Pages evicted from the buffer pool.
    pub pool_evictions: Arc<Counter>,
    /// Commits performed.
    pub commits: Arc<Counter>,
    /// Checkpoints performed.
    pub checkpoints: Arc<Counter>,
    /// Pages newly allocated.
    pub pages_allocated: Arc<Counter>,
    /// Pages returned to the freelist.
    pub pages_freed: Arc<Counter>,
    /// fsync calls issued.
    pub syncs: Arc<Counter>,
    /// Pages loaded into the pool by the readahead worker.
    pub prefetch_reads: Arc<Counter>,
    /// Readahead requests skipped because the page was already resident.
    pub prefetch_skipped: Arc<Counter>,
    /// Read transactions begun (snapshot pins).
    pub reader_pins: Arc<Counter>,
    /// Contended writer-lock acquisitions (another writer or checkpoint
    /// held the lock). Readers never touch the writer lock, so this
    /// staying flat while searches run proves the no-blocking contract.
    pub writer_lock_waits: Arc<Counter>,
    /// Cached page versions dropped by snapshot-floor garbage
    /// collection (superseded versions no live reader can resolve).
    pub version_gc_pages: Arc<Counter>,
}

impl IoStats {
    #[inline]
    pub(crate) fn bump(counter: &Counter) {
        counter.inc();
    }

    #[inline]
    pub(crate) fn add(counter: &Counter, n: u64) {
        counter.add(n);
    }

    /// Takes a point-in-time snapshot of all counters.
    pub fn snapshot(&self) -> StoreStats {
        StoreStats {
            main_reads: self.main_reads.get(),
            main_writes: self.main_writes.get(),
            wal_reads: self.wal_reads.get(),
            wal_writes: self.wal_writes.get(),
            pool_hits: self.pool_hits.get(),
            pool_misses: self.pool_misses.get(),
            pool_evictions: self.pool_evictions.get(),
            commits: self.commits.get(),
            checkpoints: self.checkpoints.get(),
            pages_allocated: self.pages_allocated.get(),
            pages_freed: self.pages_freed.get(),
            syncs: self.syncs.get(),
            prefetch_reads: self.prefetch_reads.get(),
            prefetch_skipped: self.prefetch_skipped.get(),
            reader_pins: self.reader_pins.get(),
            writer_lock_waits: self.writer_lock_waits.get(),
            version_gc_pages: self.version_gc_pages.get(),
        }
    }

    /// Registers every counter in `registry` under
    /// `{prefix}{counter_name}` (e.g. `micronn_store_pool_hits`).
    /// Registry snapshots then observe the store's live traffic — the
    /// same atomics, not copies.
    pub fn register_into(&self, registry: &Registry, prefix: &str) {
        let entries: [(&str, &Arc<Counter>); 17] = [
            ("main_reads", &self.main_reads),
            ("main_writes", &self.main_writes),
            ("wal_reads", &self.wal_reads),
            ("wal_writes", &self.wal_writes),
            ("pool_hits", &self.pool_hits),
            ("pool_misses", &self.pool_misses),
            ("pool_evictions", &self.pool_evictions),
            ("commits", &self.commits),
            ("checkpoints", &self.checkpoints),
            ("pages_allocated", &self.pages_allocated),
            ("pages_freed", &self.pages_freed),
            ("syncs", &self.syncs),
            ("prefetch_reads", &self.prefetch_reads),
            ("prefetch_skipped", &self.prefetch_skipped),
            ("reader_pins", &self.reader_pins),
            ("writer_lock_waits", &self.writer_lock_waits),
            ("version_gc_pages", &self.version_gc_pages),
        ];
        for (name, counter) in entries {
            registry.register_counter(&format!("{prefix}{name}"), Arc::clone(counter));
        }
    }
}

/// A point-in-time copy of [`IoStats`], supporting differencing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    pub main_reads: u64,
    pub main_writes: u64,
    pub wal_reads: u64,
    pub wal_writes: u64,
    pub pool_hits: u64,
    pub pool_misses: u64,
    pub pool_evictions: u64,
    pub commits: u64,
    pub checkpoints: u64,
    pub pages_allocated: u64,
    pub pages_freed: u64,
    pub syncs: u64,
    pub prefetch_reads: u64,
    pub prefetch_skipped: u64,
    pub reader_pins: u64,
    pub writer_lock_waits: u64,
    pub version_gc_pages: u64,
}

impl StoreStats {
    /// Total pages fetched from disk (main file + WAL).
    pub fn disk_reads(&self) -> u64 {
        self.main_reads + self.wal_reads
    }

    /// Total pages pushed to disk (WAL frames + checkpoint writes).
    pub fn disk_writes(&self) -> u64 {
        self.main_writes + self.wal_writes
    }

    /// Pool hit ratio in `[0, 1]`; `1.0` when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            1.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }

    /// Counter-wise difference `self - earlier`, for measuring a region.
    pub fn since(&self, earlier: &StoreStats) -> StoreStats {
        StoreStats {
            main_reads: self.main_reads - earlier.main_reads,
            main_writes: self.main_writes - earlier.main_writes,
            wal_reads: self.wal_reads - earlier.wal_reads,
            wal_writes: self.wal_writes - earlier.wal_writes,
            pool_hits: self.pool_hits - earlier.pool_hits,
            pool_misses: self.pool_misses - earlier.pool_misses,
            pool_evictions: self.pool_evictions - earlier.pool_evictions,
            commits: self.commits - earlier.commits,
            checkpoints: self.checkpoints - earlier.checkpoints,
            pages_allocated: self.pages_allocated - earlier.pages_allocated,
            pages_freed: self.pages_freed - earlier.pages_freed,
            syncs: self.syncs - earlier.syncs,
            prefetch_reads: self.prefetch_reads - earlier.prefetch_reads,
            prefetch_skipped: self.prefetch_skipped - earlier.prefetch_skipped,
            reader_pins: self.reader_pins - earlier.reader_pins,
            writer_lock_waits: self.writer_lock_waits - earlier.writer_lock_waits,
            version_gc_pages: self.version_gc_pages - earlier.version_gc_pages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_diff() {
        let s = IoStats::default();
        IoStats::bump(&s.main_reads);
        IoStats::bump(&s.main_reads);
        IoStats::add(&s.wal_writes, 5);
        let a = s.snapshot();
        assert_eq!(a.main_reads, 2);
        assert_eq!(a.wal_writes, 5);
        IoStats::bump(&s.pool_hits);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.pool_hits, 1);
        assert_eq!(d.main_reads, 0);
    }

    #[test]
    fn derived_metrics() {
        let st = StoreStats {
            main_reads: 3,
            wal_reads: 2,
            main_writes: 1,
            wal_writes: 4,
            pool_hits: 9,
            pool_misses: 1,
            ..Default::default()
        };
        assert_eq!(st.disk_reads(), 5);
        assert_eq!(st.disk_writes(), 5);
        assert!((st.hit_ratio() - 0.9).abs() < 1e-12);
        assert_eq!(StoreStats::default().hit_ratio(), 1.0);
    }

    #[test]
    fn registry_sees_live_store_counters() {
        let s = IoStats::default();
        let r = Registry::new();
        s.register_into(&r, "store_");
        IoStats::bump(&s.commits);
        IoStats::add(&s.wal_writes, 3);
        let snap = r.snapshot();
        assert_eq!(snap.counter("store_commits"), Some(1));
        assert_eq!(snap.counter("store_wal_writes"), Some(3));
        assert_eq!(snap.counter("store_main_reads"), Some(0));
    }
}
