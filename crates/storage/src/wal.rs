//! Page-image write-ahead log.
//!
//! This mirrors SQLite's WAL-mode design, which the paper names as the
//! mechanism behind MicroNN's ACID semantics (§3.6): a commit appends
//! full images of every dirty page to a side log, with the final frame
//! of each transaction carrying a commit marker and the new database
//! size. Readers never block writers and vice versa:
//!
//! * A **reader** captures the sequence number of the last committed
//!   frame when its transaction begins (its *snapshot*) and resolves
//!   every page to the newest WAL frame at or below that snapshot,
//!   falling back to the main database file.
//! * The single **writer** appends frames and only then publishes them
//!   to the shared in-memory WAL index, so a torn append is invisible.
//! * A **checkpoint** copies committed frames back into the main file
//!   once no reader depends on an older snapshot, then truncates the log.
//!
//! On open, the WAL is scanned front to back; frames are accepted while
//! their checksums validate and only up to the last commit marker —
//! this is crash recovery. All file I/O goes through the
//! [`crate::vfs::Vfs`] layer, so the crash-injection backend
//! ([`crate::sim::SimVfs`]) can interrupt any write or fsync and the
//! recovery scan is exercised against torn frames, lost unsynced
//! writes, and interrupted checkpoints — not just clean shutdowns.
//!
//! # Group commit
//!
//! Durability is decoupled from publication. A committer appends and
//! publishes its frames under the writer lock ([`Wal::append_commit`]),
//! then — with the lock released — waits for its sequence number to
//! become durable ([`Wal::sync_committed`]). The first committer to
//! arrive becomes the **leader**: it snapshots the published watermark
//! and issues one fsync covering every frame appended so far.
//! Committers that arrive while a sync is in flight wait for the next
//! group sync instead of issuing their own, so N concurrent commits
//! cost far fewer than N fsyncs. A commit is only acknowledged after
//! its sequence number is at or below the synced watermark; a
//! published-but-not-yet-synced commit is visible to concurrent
//! readers but unacked, exactly the window a power cut may lose.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use crate::checksum::fnv1a;
use crate::error::{Result, StorageError};
use crate::page::{PageData, PageId, PAGE_SIZE};
use crate::vfs::{OpenMode, Vfs, VfsFile};

/// Magic prefix of a WAL file.
const WAL_MAGIC: u64 = 0x4D4E_4E57_414C_3031; // "MNNWAL01"
/// Size of the WAL file header.
pub const WAL_HEADER: u64 = 16;
/// Size of each frame header preceding its page image.
pub const FRAME_HEADER: u64 = 24;
/// Total on-disk footprint of one frame.
pub const FRAME_SIZE: u64 = FRAME_HEADER + PAGE_SIZE as u64;

/// Metadata of one committed frame, kept in the in-memory WAL index.
#[derive(Debug, Clone, Copy)]
struct FrameMeta {
    page: PageId,
    /// Global monotonically increasing version; never reused, not even
    /// across checkpoints, so buffer-pool keys stay unambiguous.
    seq: u64,
}

/// In-memory index over the WAL file: which frames exist, which pages
/// they hold, and where the committed watermark sits.
#[derive(Debug, Default)]
pub struct WalIndex {
    /// Committed frames in file order; frame `i` lives at byte offset
    /// `WAL_HEADER + i * FRAME_SIZE`.
    frames: Vec<FrameMeta>,
    /// Frame indexes per page, ascending (and therefore ascending in seq).
    by_page: HashMap<PageId, Vec<u32>>,
    /// Sequence number of the newest committed frame; `0` = empty log.
    committed_seq: u64,
    /// Database size in pages after the newest commit; `0` = unknown
    /// (no commits in the log).
    db_size: u32,
}

impl WalIndex {
    /// Finds the newest frame for `page` visible at `snapshot`
    /// (`seq <= snapshot`). Returns the frame's file index.
    pub fn find(&self, page: PageId, snapshot: u64) -> Option<u32> {
        let list = self.by_page.get(&page)?;
        // Frames per page are ascending in seq: binary search for the
        // last one at or below the snapshot.
        let mut lo = 0usize;
        let mut hi = list.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.frames[list[mid] as usize].seq <= snapshot {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == 0 {
            None
        } else {
            Some(list[lo - 1])
        }
    }

    /// Like [`WalIndex::find`], but also returns the frame's sequence
    /// number from the same lookup — callers must not fetch the seq
    /// through a second index acquisition, since a checkpoint reset
    /// could empty the index in between.
    pub fn find_versioned(&self, page: PageId, snapshot: u64) -> Option<(u32, u64)> {
        let fi = self.find(page, snapshot)?;
        Some((fi, self.frames[fi as usize].seq))
    }

    /// Latest committed sequence number.
    pub fn committed_seq(&self) -> u64 {
        self.committed_seq
    }

    /// Number of committed frames currently in the log.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Database page count recorded by the newest commit, if any.
    pub fn db_size(&self) -> Option<u32> {
        if self.db_size == 0 {
            None
        } else {
            Some(self.db_size)
        }
    }

    /// For checkpointing: the newest frame index per page among frames
    /// with `seq <= upto`, plus the seq that produced it.
    pub fn latest_per_page(&self, upto: u64) -> Vec<(PageId, u32, u64)> {
        let mut out = Vec::with_capacity(self.by_page.len());
        for (&page, list) in &self.by_page {
            let mut best: Option<(u32, u64)> = None;
            for &fi in list.iter().rev() {
                let seq = self.frames[fi as usize].seq;
                if seq <= upto {
                    best = Some((fi, seq));
                    break;
                }
            }
            if let Some((fi, seq)) = best {
                out.push((page, fi, seq));
            }
        }
        out
    }
}

/// The write-ahead log: an append-only file plus the in-memory
/// [`WalIndex`]. All mutating operations are called with the store's
/// writer lock held; reads are lock-free on the file (pread). The one
/// exception is [`Wal::sync_committed`], which runs *outside* the
/// writer lock so concurrent committers can share one group fsync.
pub struct Wal {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    index: parking_lot::RwLock<WalIndex>,
    /// Next sequence number to assign; strictly increasing for the
    /// lifetime of the process (seeded past recovered frames on open).
    next_seq: parking_lot::Mutex<u64>,
    /// Number of frames physically in the file, including appended but
    /// not yet published (spilled) frames. Always `>= index.frames.len()`.
    pending_tail: parking_lot::Mutex<u64>,
    /// Group-commit state: the durable watermark and the leader flag.
    /// Uses `std::sync` because waiters need a condition variable.
    group: GroupCommit,
}

struct GroupState {
    /// Highest sequence number known durable (covered by an fsync of
    /// the WAL, or carried into the main file by a synced checkpoint).
    synced_seq: u64,
    /// True while some committer's fsync is in flight.
    leader_active: bool,
}

struct GroupCommit {
    state: std::sync::Mutex<GroupState>,
    cv: std::sync::Condvar,
}

impl GroupCommit {
    fn new(synced_seq: u64) -> GroupCommit {
        GroupCommit {
            state: std::sync::Mutex::new(GroupState {
                synced_seq,
                leader_active: false,
            }),
            cv: std::sync::Condvar::new(),
        }
    }
}

/// Outcome of opening a WAL file.
pub struct WalOpen {
    pub wal: Wal,
    /// Number of torn/uncommitted trailing frames discarded by recovery.
    pub discarded_frames: u64,
}

impl Wal {
    /// Creates a fresh WAL at `path`, truncating any existing file.
    /// `sync_header` makes the header durable immediately — the extra
    /// safety of [`crate::SyncMode::Full`]; under `Normal`/`Off` the
    /// header reaches disk with the first group fsync instead.
    pub fn create(vfs: &dyn Vfs, path: &Path, sync_header: bool) -> Result<Wal> {
        let file = vfs.open(path, OpenMode::CreateTruncate)?;
        let mut hdr = [0u8; WAL_HEADER as usize];
        hdr[..8].copy_from_slice(&WAL_MAGIC.to_le_bytes());
        hdr[8..12].copy_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
        file.write_all_at(&hdr, 0)?;
        if sync_header {
            file.sync()?;
        }
        Ok(Wal {
            file,
            path: path.to_owned(),
            index: parking_lot::RwLock::new(WalIndex::default()),
            next_seq: parking_lot::Mutex::new(1),
            pending_tail: parking_lot::Mutex::new(0),
            group: GroupCommit::new(0),
        })
    }

    /// Opens an existing WAL, replaying committed frames into the index
    /// (crash recovery). Creates the file if missing (`sync_header` as
    /// in [`Wal::create`]).
    pub fn open(vfs: &dyn Vfs, path: &Path, sync_header: bool) -> Result<WalOpen> {
        if !vfs.exists(path) {
            return Ok(WalOpen {
                wal: Wal::create(vfs, path, sync_header)?,
                discarded_frames: 0,
            });
        }
        let file = vfs.open(path, OpenMode::Open)?;
        let len = file.len()?;
        if len < WAL_HEADER {
            // Torn header: treat as empty.
            drop(file);
            return Ok(WalOpen {
                wal: Wal::create(vfs, path, sync_header)?,
                discarded_frames: 0,
            });
        }
        let mut hdr = [0u8; WAL_HEADER as usize];
        file.read_exact_at(&mut hdr, 0)?;
        let magic = u64::from_le_bytes(hdr[..8].try_into().unwrap());
        if magic != WAL_MAGIC {
            return Err(StorageError::BadHeader("wal magic mismatch".into()));
        }
        let page_size = u32::from_le_bytes(hdr[8..12].try_into().unwrap());
        if page_size as usize != PAGE_SIZE {
            return Err(StorageError::BadHeader(format!(
                "wal page size {page_size} != {PAGE_SIZE}"
            )));
        }

        let mut index = WalIndex::default();
        let mut pending: Vec<FrameMeta> = Vec::new();
        let total_frames = (len - WAL_HEADER) / FRAME_SIZE;
        let mut committed_upto = 0u64; // frame count accepted
        let mut max_seq = 0u64;
        let mut fh = [0u8; FRAME_HEADER as usize];
        let mut img = vec![0u8; PAGE_SIZE];
        for i in 0..total_frames {
            let off = WAL_HEADER + i * FRAME_SIZE;
            file.read_exact_at(&mut fh, off)?;
            file.read_exact_at(&mut img, off + FRAME_HEADER)?;
            let page = u32::from_le_bytes(fh[0..4].try_into().unwrap());
            let db_size = u32::from_le_bytes(fh[4..8].try_into().unwrap());
            let seq = u64::from_le_bytes(fh[8..16].try_into().unwrap());
            let stored_ck = u64::from_le_bytes(fh[16..24].try_into().unwrap());
            let ck = frame_checksum(page, db_size, seq, &img);
            if ck != stored_ck {
                break; // torn frame: stop recovery here
            }
            pending.push(FrameMeta { page, seq });
            max_seq = max_seq.max(seq);
            if db_size != 0 {
                // Commit marker: publish everything pending.
                for m in pending.drain(..) {
                    let fi = index.frames.len() as u32;
                    index.by_page.entry(m.page).or_default().push(fi);
                    index.frames.push(m);
                }
                index.committed_seq = max_seq;
                index.db_size = db_size;
                committed_upto = i + 1;
            }
        }
        let discarded = total_frames - committed_upto;
        // Truncate any torn tail so future appends are contiguous.
        file.set_len(WAL_HEADER + committed_upto * FRAME_SIZE)?;
        let next = max_seq.max(index.committed_seq) + 1;
        // Everything recovery accepted is on disk by definition; seed
        // the durable watermark there so only new commits fsync.
        let synced = index.committed_seq;
        Ok(WalOpen {
            wal: Wal {
                file,
                path: path.to_owned(),
                index: parking_lot::RwLock::new(index),
                next_seq: parking_lot::Mutex::new(next),
                pending_tail: parking_lot::Mutex::new(committed_upto),
                group: GroupCommit::new(synced),
            },
            discarded_frames: discarded,
        })
    }

    /// Appends one transaction's dirty pages as a frame batch ending in
    /// a commit marker, then publishes them (plus any frames the
    /// transaction spilled earlier via [`Wal::spill`]) to the index.
    /// Returns the new committed sequence number. `db_size` is the
    /// database page count after this commit. Called with the writer
    /// lock held. Durability is separate: call [`Wal::sync_committed`]
    /// (after releasing the writer lock) before acking.
    pub fn append_commit(&self, pages: &[(PageId, &PageData)], db_size: u32) -> Result<u64> {
        assert!(!pages.is_empty(), "empty commits are elided by the store");
        let appended = self.append_frames(pages, db_size)?;
        let commit_seq = appended.last().expect("non-empty").1;
        self.publish(db_size, commit_seq)?;
        Ok(commit_seq)
    }

    /// Convenience: [`Wal::append_commit`] followed, when `sync` is
    /// set, by [`Wal::sync_committed`].
    pub fn commit(&self, pages: &[(PageId, &PageData)], db_size: u32, sync: bool) -> Result<u64> {
        let commit_seq = self.append_commit(pages, db_size)?;
        if sync {
            self.sync_committed(commit_seq)?;
        }
        Ok(commit_seq)
    }

    /// Blocks until every frame up to `upto` is durable, issuing at
    /// most one fsync per *group* of waiting committers: the first
    /// arrival leads and syncs the whole published log; later arrivals
    /// wait for that sync (or the next) to cover them. Returns whether
    /// this caller issued an fsync itself, for I/O accounting. Called
    /// *without* the writer lock, so commits already published keep
    /// flowing while a sync is in flight.
    pub fn sync_committed(&self, upto: u64) -> Result<bool> {
        let mut issued = false;
        let mut st = self.group.state.lock().expect("group lock poisoned");
        loop {
            if st.synced_seq >= upto {
                return Ok(issued);
            }
            if st.leader_active {
                st = self.group.cv.wait(st).expect("group lock poisoned");
                continue;
            }
            st.leader_active = true;
            drop(st);
            // Snapshot the published watermark after taking leadership:
            // the fsync below makes every frame appended before this
            // point durable, so the whole group is covered at once.
            let target = self.index.read().committed_seq();
            let res = self.file.sync();
            st = self.group.state.lock().expect("group lock poisoned");
            st.leader_active = false;
            self.group.cv.notify_all();
            match res {
                Ok(()) => {
                    st.synced_seq = st.synced_seq.max(target);
                    issued = true;
                }
                // Waiters retake leadership and surface their own error.
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Advances the durable watermark without an fsync of the WAL —
    /// used when a synced checkpoint has already carried frames up to
    /// `seq` into the main file, making a WAL fsync for them redundant.
    pub fn note_durable(&self, seq: u64) {
        let mut st = self.group.state.lock().expect("group lock poisoned");
        if seq > st.synced_seq {
            st.synced_seq = seq;
            self.group.cv.notify_all();
        }
    }

    /// Appends frames *without* a commit marker and without publishing:
    /// the cache-spill path for transactions larger than memory (e.g. a
    /// full index rebuild). Spilled frames are invisible to readers and
    /// discarded by crash recovery until a later [`Wal::commit`]
    /// publishes everything. Returns `(frame_index, seq)` per page.
    /// Called with the writer lock held.
    pub fn spill(&self, pages: &[(PageId, &PageData)]) -> Result<Vec<(u32, u64)>> {
        self.append_frames(pages, 0)
    }

    /// Reads a spilled (not yet published) frame back. Only the writer
    /// that spilled it knows the frame index, so this needs no locks.
    pub fn read_unpublished_frame(&self, frame_index: u32) -> Result<PageData> {
        self.read_frame(frame_index)
    }

    /// Discards all unpublished frames (rollback of a spilling
    /// transaction): truncates the file back to the published tail.
    /// Called with the writer lock held.
    pub fn truncate_unpublished(&self) -> Result<()> {
        let published = self.index.read().frames.len() as u64;
        let mut tail = self.pending_tail.lock();
        if *tail > published {
            self.file.set_len(WAL_HEADER + published * FRAME_SIZE)?;
            *tail = published;
        }
        Ok(())
    }

    fn append_frames(
        &self,
        pages: &[(PageId, &PageData)],
        db_size_on_last: u32,
    ) -> Result<Vec<(u32, u64)>> {
        let (start_index, base_seq) = {
            let mut tail = self.pending_tail.lock();
            let mut ns = self.next_seq.lock();
            let base = *ns;
            *ns += pages.len() as u64;
            let start = *tail;
            *tail += pages.len() as u64;
            (start, base)
        };
        // Serialize all frames into one buffer: a single pwrite keeps
        // latency low and makes torn writes a pure prefix.
        let mut buf = Vec::with_capacity(pages.len() * FRAME_SIZE as usize);
        let mut out = Vec::with_capacity(pages.len());
        for (i, (page, data)) in pages.iter().enumerate() {
            let is_last = i + 1 == pages.len();
            let commit_size = if is_last { db_size_on_last } else { 0 };
            let seq = base_seq + i as u64;
            let ck = frame_checksum(*page, commit_size, seq, &data[..]);
            buf.extend_from_slice(&page.to_le_bytes());
            buf.extend_from_slice(&commit_size.to_le_bytes());
            buf.extend_from_slice(&seq.to_le_bytes());
            buf.extend_from_slice(&ck.to_le_bytes());
            buf.extend_from_slice(&data[..]);
            out.push(((start_index + i as u64) as u32, seq));
        }
        let off = WAL_HEADER + start_index * FRAME_SIZE;
        self.file.write_all_at(&buf, off)?;
        Ok(out)
    }

    /// Publishes every appended-but-unpublished frame up to the current
    /// pending tail: readers beginning after this see the new snapshot.
    fn publish(&self, db_size: u32, commit_seq: u64) -> Result<()> {
        let tail = *self.pending_tail.lock();
        let mut index = self.index.write();
        let published = index.frames.len() as u64;
        for fi in published..tail {
            // Re-read the frame header to learn page + seq; cheaper to
            // track in memory, but commit is not the hot path and this
            // keeps spill bookkeeping entirely inside the WAL.
            let mut fh = [0u8; FRAME_HEADER as usize];
            self.file
                .read_exact_at(&mut fh, WAL_HEADER + fi * FRAME_SIZE)?;
            let page = u32::from_le_bytes(fh[0..4].try_into().unwrap());
            let seq = u64::from_le_bytes(fh[8..16].try_into().unwrap());
            index.by_page.entry(page).or_default().push(fi as u32);
            index.frames.push(FrameMeta { page, seq });
        }
        index.committed_seq = commit_seq;
        index.db_size = db_size;
        Ok(())
    }

    /// Reads the page image of frame `frame_index`.
    pub fn read_frame(&self, frame_index: u32) -> Result<PageData> {
        let off = WAL_HEADER + frame_index as u64 * FRAME_SIZE + FRAME_HEADER;
        let mut page = PageData::zeroed();
        self.file.read_exact_at(&mut page[..], off)?;
        Ok(page)
    }

    /// Seq of the frame at `frame_index` (for buffer-pool versioning).
    pub fn frame_seq(&self, frame_index: u32) -> u64 {
        self.index.read().frames[frame_index as usize].seq
    }

    /// Shared read access to the index.
    pub fn index(&self) -> parking_lot::RwLockReadGuard<'_, WalIndex> {
        self.index.read()
    }

    /// Truncates the log back to an empty state after a checkpoint has
    /// copied all frames into the main file. Called with the writer
    /// lock held and no readers below the checkpointed snapshot.
    pub fn reset(&self, sync: bool) -> Result<()> {
        self.file.set_len(WAL_HEADER)?;
        if sync {
            self.file.sync()?;
        }
        *self.pending_tail.lock() = 0;
        let mut index = self.index.write();
        let committed = index.committed_seq;
        let db_size = index.db_size;
        *index = WalIndex::default();
        // The committed watermark survives the reset: snapshots are
        // logical versions, not file offsets.
        index.committed_seq = committed;
        index.db_size = db_size;
        Ok(())
    }

    /// Path of the WAL file (used by crash-simulation tests).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Checksum covering the frame header fields and the page image.
fn frame_checksum(page: PageId, db_size: u32, seq: u64, img: &[u8]) -> u64 {
    let mut hdr = [0u8; 16];
    hdr[0..4].copy_from_slice(&page.to_le_bytes());
    hdr[4..8].copy_from_slice(&db_size.to_le_bytes());
    hdr[8..16].copy_from_slice(&seq.to_le_bytes());
    let h = fnv1a(0, &hdr);
    fnv1a(h, img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::StdVfs;

    fn page_filled(b: u8) -> PageData {
        let mut p = PageData::zeroed();
        p.iter_mut().for_each(|x| *x = b);
        p
    }

    fn create(path: &Path) -> Wal {
        Wal::create(&StdVfs, path, true).unwrap()
    }

    fn reopen(path: &Path) -> WalOpen {
        Wal::open(&StdVfs, path, true).unwrap()
    }

    #[test]
    fn commit_and_lookup() {
        let dir = tempfile::tempdir().unwrap();
        let wal = create(&dir.path().join("w.wal"));
        let p1 = page_filled(1);
        let p2 = page_filled(2);
        let seq = wal.commit(&[(5, &p1), (9, &p2)], 10, false).unwrap();
        assert_eq!(seq, 2);
        let idx = wal.index();
        assert_eq!(idx.committed_seq(), 2);
        assert_eq!(idx.db_size(), Some(10));
        let f5 = idx.find(5, seq).unwrap();
        let f9 = idx.find(9, seq).unwrap();
        drop(idx);
        assert_eq!(wal.read_frame(f5).unwrap()[0], 1);
        assert_eq!(wal.read_frame(f9).unwrap()[0], 2);
    }

    #[test]
    fn snapshot_sees_only_older_frames() {
        let dir = tempfile::tempdir().unwrap();
        let wal = create(&dir.path().join("w.wal"));
        let old = page_filled(1);
        let new = page_filled(2);
        let snap1 = wal.commit(&[(5, &old)], 10, false).unwrap();
        let snap2 = wal.commit(&[(5, &new)], 10, false).unwrap();
        let idx = wal.index();
        let f_old = idx.find(5, snap1).unwrap();
        let f_new = idx.find(5, snap2).unwrap();
        assert_ne!(f_old, f_new);
        drop(idx);
        assert_eq!(wal.read_frame(f_old).unwrap()[0], 1);
        assert_eq!(wal.read_frame(f_new).unwrap()[0], 2);
        // A snapshot taken before any commit sees nothing.
        assert!(wal.index().find(5, 0).is_none());
    }

    #[test]
    fn recovery_replays_committed_frames() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("w.wal");
        {
            let wal = create(&path);
            wal.commit(&[(1, &page_filled(7))], 3, true).unwrap();
            wal.commit(&[(2, &page_filled(8)), (1, &page_filled(9))], 3, true)
                .unwrap();
            // Dropped without checkpoint: simulates a crash.
        }
        let opened = reopen(&path);
        assert_eq!(opened.discarded_frames, 0);
        let wal = opened.wal;
        let idx = wal.index();
        assert_eq!(idx.frame_count(), 3);
        let snap = idx.committed_seq();
        let f1 = idx.find(1, snap).unwrap();
        drop(idx);
        assert_eq!(wal.read_frame(f1).unwrap()[0], 9, "newest version wins");
    }

    #[test]
    fn recovery_discards_torn_tail() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("w.wal");
        {
            let wal = create(&path);
            wal.commit(&[(1, &page_filled(7))], 3, true).unwrap();
            wal.commit(&[(2, &page_filled(8))], 3, true).unwrap();
        }
        // Corrupt the second frame's payload byte -> checksum fails.
        {
            use std::os::unix::fs::FileExt;
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            let off = WAL_HEADER + FRAME_SIZE + FRAME_HEADER + 100;
            f.write_all_at(&[0xFF], off).unwrap();
        }
        let opened = reopen(&path);
        assert_eq!(opened.discarded_frames, 1);
        let idx = opened.wal.index();
        assert_eq!(idx.frame_count(), 1);
        assert!(idx.find(2, idx.committed_seq()).is_none());
        assert!(idx.find(1, idx.committed_seq()).is_some());
    }

    #[test]
    fn recovery_discards_uncommitted_prefix_frames() {
        // Frames written without a trailing commit marker must be
        // invisible after recovery: simulate by writing a valid frame
        // with db_size = 0 directly.
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("w.wal");
        {
            let wal = create(&path);
            wal.commit(&[(1, &page_filled(7))], 3, true).unwrap();
            // Hand-append a non-commit frame.
            let img = page_filled(9);
            let ck = frame_checksum(4, 0, 99, &img[..]);
            let mut buf = Vec::new();
            buf.extend_from_slice(&4u32.to_le_bytes());
            buf.extend_from_slice(&0u32.to_le_bytes());
            buf.extend_from_slice(&99u64.to_le_bytes());
            buf.extend_from_slice(&ck.to_le_bytes());
            buf.extend_from_slice(&img[..]);
            wal.file
                .write_all_at(&buf, WAL_HEADER + FRAME_SIZE)
                .unwrap();
        }
        let opened = reopen(&path);
        assert_eq!(opened.discarded_frames, 1);
        assert_eq!(opened.wal.index().frame_count(), 1);
    }

    #[test]
    fn reset_preserves_watermark() {
        let dir = tempfile::tempdir().unwrap();
        let wal = create(&dir.path().join("w.wal"));
        let snap = wal.commit(&[(1, &page_filled(1))], 2, false).unwrap();
        wal.reset(false).unwrap();
        let idx = wal.index();
        assert_eq!(idx.frame_count(), 0);
        assert_eq!(idx.committed_seq(), snap);
        assert!(idx.find(1, snap).is_none(), "frames gone after reset");
        drop(idx);
        // Sequence numbers keep increasing after a reset.
        let snap2 = wal.commit(&[(1, &page_filled(2))], 2, false).unwrap();
        assert!(snap2 > snap);
    }

    #[test]
    fn sync_committed_is_idempotent_past_watermark() {
        let dir = tempfile::tempdir().unwrap();
        let wal = create(&dir.path().join("w.wal"));
        let seq = wal.commit(&[(1, &page_filled(1))], 2, false).unwrap();
        assert!(wal.sync_committed(seq).unwrap(), "first caller syncs");
        assert!(
            !wal.sync_committed(seq).unwrap(),
            "watermark already covers seq: no second fsync"
        );
    }

    #[test]
    fn note_durable_satisfies_waiters_without_fsync() {
        let dir = tempfile::tempdir().unwrap();
        let wal = create(&dir.path().join("w.wal"));
        let seq = wal.commit(&[(1, &page_filled(1))], 2, false).unwrap();
        // A synced checkpoint would advance the watermark like this.
        wal.note_durable(seq);
        assert!(!wal.sync_committed(seq).unwrap());
    }

    #[test]
    fn latest_per_page_respects_upto() {
        let dir = tempfile::tempdir().unwrap();
        let wal = create(&dir.path().join("w.wal"));
        let s1 = wal.commit(&[(1, &page_filled(1))], 2, false).unwrap();
        let _s2 = wal.commit(&[(1, &page_filled(2))], 2, false).unwrap();
        let idx = wal.index();
        let upto_s1 = idx.latest_per_page(s1);
        assert_eq!(upto_s1.len(), 1);
        assert_eq!(upto_s1[0].2, s1);
        let all = idx.latest_per_page(u64::MAX);
        assert_eq!(all.len(), 1);
        assert!(all[0].2 > s1);
    }
}
