//! Record-oriented write-ahead log: `Begin` / `PagePut` / `Commit`.
//!
//! This mirrors SQLite's WAL-mode design, which the paper names as the
//! mechanism behind MicroNN's ACID semantics (§3.6), extended with
//! explicit transaction records so every byte in the log is owned by a
//! transaction id:
//!
//! * `Begin(txid)` opens a transaction's run of records.
//! * `PagePut(txid, page)` carries one full page image — the unit of
//!   both logging and buffer-pool caching.
//! * `Commit(txid, db_size)` seals the run; its sequence number is the
//!   transaction's **commit sequence**, the snapshot LSN readers pin.
//!
//! Readers never block writers and vice versa:
//!
//! * A **reader** captures the sequence number of the last committed
//!   record when its transaction begins (its *snapshot*) and resolves
//!   every page to the newest `PagePut` at or below that snapshot,
//!   falling back to the main database file.
//! * The single **writer** appends records and only then publishes them
//!   to the shared in-memory WAL index, so a torn append is invisible.
//! * A **checkpoint** copies committed page images back into the main
//!   file once no reader depends on an older snapshot, then truncates
//!   the log.
//!
//! On open, the log is scanned front to back; records are accepted
//! while their checksums validate, and a transaction's `PagePut`s
//! become visible only when its `Commit` record is reached — this is
//! crash recovery. A torn record, a checksum mismatch, or a record
//! whose txid does not match the open `Begin` ends the scan, and the
//! file is truncated back to the last `Commit`. All file I/O goes
//! through the [`crate::vfs::Vfs`] layer, so the crash-injection
//! backend ([`crate::sim::SimVfs`]) can interrupt any write or fsync
//! and the recovery scan is exercised against torn records, lost
//! unsynced writes, and interrupted checkpoints — not just clean
//! shutdowns.
//!
//! # Group commit
//!
//! Durability is decoupled from publication. A committer appends and
//! publishes its records under the writer lock ([`Wal::append_commit`]),
//! then — with the lock released — waits for its sequence number to
//! become durable ([`Wal::sync_committed`]). The first committer to
//! arrive becomes the **leader**: it snapshots the published watermark
//! and issues one fsync covering every record appended so far.
//! Committers that arrive while a sync is in flight wait for the next
//! group sync instead of issuing their own, so N concurrent commits
//! cost far fewer than N fsyncs. A commit is only acknowledged after
//! its sequence number is at or below the synced watermark; a
//! published-but-not-yet-synced commit is visible to concurrent
//! readers but unacked, exactly the window a power cut may lose.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use crate::checksum::fnv1a;
use crate::error::{Result, StorageError};
use crate::page::{PageData, PageId, PAGE_SIZE};
use crate::vfs::{OpenMode, Vfs, VfsFile};

/// Magic prefix of a WAL file (format 2: record-oriented).
const WAL_MAGIC: u64 = 0x4D4E_4E57_414C_3032; // "MNNWAL02"
/// Size of the WAL file header.
pub const WAL_HEADER: u64 = 16;
/// Size of every record header. `PagePut` records are followed by one
/// page image; `Begin` and `Commit` records are header-only.
pub const RECORD_HEADER: u64 = 40;
/// Total on-disk footprint of one `PagePut` record.
pub const PAGE_RECORD_SIZE: u64 = RECORD_HEADER + PAGE_SIZE as u64;

/// Record kinds, stored in the first header field.
const KIND_BEGIN: u32 = 1;
const KIND_PAGE_PUT: u32 = 2;
const KIND_COMMIT: u32 = 3;

/// Metadata of one committed `PagePut` record, kept in the in-memory
/// WAL index.
#[derive(Debug, Clone, Copy)]
struct FrameMeta {
    page: PageId,
    /// Global monotonically increasing version; never reused, not even
    /// across checkpoints, so buffer-pool keys stay unambiguous.
    seq: u64,
    /// Byte offset of the page image in the WAL file.
    offset: u64,
}

/// In-memory index over the WAL file: which page images exist, where
/// they live, and where the committed watermark sits.
#[derive(Debug)]
pub struct WalIndex {
    /// Committed `PagePut` records in file order.
    frames: Vec<FrameMeta>,
    /// Frame indexes per page, ascending (and therefore ascending in seq).
    by_page: HashMap<PageId, Vec<u32>>,
    /// Sequence number of the newest committed record; `0` = empty log.
    committed_seq: u64,
    /// Database size in pages after the newest commit; `0` = unknown
    /// (no commits in the log).
    db_size: u32,
    /// Byte offset one past the last published `Commit` record.
    published_end: u64,
}

impl Default for WalIndex {
    fn default() -> Self {
        WalIndex {
            frames: Vec::new(),
            by_page: HashMap::new(),
            committed_seq: 0,
            db_size: 0,
            published_end: WAL_HEADER,
        }
    }
}

impl WalIndex {
    /// Finds the newest image of `page` visible at `snapshot`
    /// (`seq <= snapshot`). Returns the image's byte offset.
    pub fn find(&self, page: PageId, snapshot: u64) -> Option<u64> {
        self.find_versioned(page, snapshot).map(|(off, _)| off)
    }

    /// Like [`WalIndex::find`], but also returns the record's sequence
    /// number from the same lookup — callers must not fetch the seq
    /// through a second index acquisition, since a checkpoint reset
    /// could empty the index in between.
    pub fn find_versioned(&self, page: PageId, snapshot: u64) -> Option<(u64, u64)> {
        let list = self.by_page.get(&page)?;
        // Records per page are ascending in seq: binary search for the
        // last one at or below the snapshot.
        let mut lo = 0usize;
        let mut hi = list.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.frames[list[mid] as usize].seq <= snapshot {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == 0 {
            None
        } else {
            let m = self.frames[list[lo - 1] as usize];
            Some((m.offset, m.seq))
        }
    }

    /// Latest committed sequence number.
    pub fn committed_seq(&self) -> u64 {
        self.committed_seq
    }

    /// Number of committed page images currently in the log.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Database page count recorded by the newest commit, if any.
    pub fn db_size(&self) -> Option<u32> {
        if self.db_size == 0 {
            None
        } else {
            Some(self.db_size)
        }
    }

    /// For checkpointing: the newest image per page among records with
    /// `seq <= upto`, as `(page, image offset, seq)`.
    pub fn latest_per_page(&self, upto: u64) -> Vec<(PageId, u64, u64)> {
        let mut out = Vec::with_capacity(self.by_page.len());
        for (&page, list) in &self.by_page {
            for &fi in list.iter().rev() {
                let m = self.frames[fi as usize];
                if m.seq <= upto {
                    out.push((page, m.offset, m.seq));
                    break;
                }
            }
        }
        out
    }
}

/// Unpublished tail state: the physical end of the file (which may
/// extend past the published index with spilled records) and the txid
/// whose `Begin` record opens the unpublished run, if any.
struct PendingTail {
    /// Byte offset one past the last appended record.
    end: u64,
    /// Transaction whose `Begin` is already in the unpublished region.
    begun: Option<u64>,
}

/// The write-ahead log: an append-only record file plus the in-memory
/// [`WalIndex`]. All mutating operations are called with the store's
/// writer lock held; reads are lock-free on the file (pread). The one
/// exception is [`Wal::sync_committed`], which runs *outside* the
/// writer lock so concurrent committers can share one group fsync.
pub struct Wal {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    index: parking_lot::RwLock<WalIndex>,
    /// Next sequence number to assign; strictly increasing for the
    /// lifetime of the process (seeded past recovered records on open).
    next_seq: parking_lot::Mutex<u64>,
    /// Physical tail of the file, including appended but not yet
    /// published (spilled) records. `end >= index.published_end`.
    pending_tail: parking_lot::Mutex<PendingTail>,
    /// Group-commit state: the durable watermark and the leader flag.
    /// Uses `std::sync` because waiters need a condition variable.
    group: GroupCommit,
}

struct GroupState {
    /// Highest sequence number known durable (covered by an fsync of
    /// the WAL, or carried into the main file by a synced checkpoint).
    synced_seq: u64,
    /// True while some committer's fsync is in flight.
    leader_active: bool,
}

struct GroupCommit {
    state: std::sync::Mutex<GroupState>,
    cv: std::sync::Condvar,
}

impl GroupCommit {
    fn new(synced_seq: u64) -> GroupCommit {
        GroupCommit {
            state: std::sync::Mutex::new(GroupState {
                synced_seq,
                leader_active: false,
            }),
            cv: std::sync::Condvar::new(),
        }
    }
}

/// Outcome of opening a WAL file.
pub struct WalOpen {
    pub wal: Wal,
    /// Number of torn/uncommitted page records discarded by recovery.
    pub discarded_frames: u64,
}

impl Wal {
    /// Creates a fresh WAL at `path`, truncating any existing file.
    /// `sync_header` makes the header durable immediately — the extra
    /// safety of [`crate::SyncMode::Full`]; under `Normal`/`Off` the
    /// header reaches disk with the first group fsync instead.
    pub fn create(vfs: &dyn Vfs, path: &Path, sync_header: bool) -> Result<Wal> {
        let file = vfs.open(path, OpenMode::CreateTruncate)?;
        let mut hdr = [0u8; WAL_HEADER as usize];
        hdr[..8].copy_from_slice(&WAL_MAGIC.to_le_bytes());
        hdr[8..12].copy_from_slice(&(PAGE_SIZE as u32).to_le_bytes());
        file.write_all_at(&hdr, 0)?;
        if sync_header {
            file.sync()?;
        }
        Ok(Wal {
            file,
            path: path.to_owned(),
            index: parking_lot::RwLock::new(WalIndex::default()),
            next_seq: parking_lot::Mutex::new(1),
            pending_tail: parking_lot::Mutex::new(PendingTail {
                end: WAL_HEADER,
                begun: None,
            }),
            group: GroupCommit::new(0),
        })
    }

    /// Opens an existing WAL, replaying committed transactions into the
    /// index (crash recovery). Creates the file if missing
    /// (`sync_header` as in [`Wal::create`]).
    pub fn open(vfs: &dyn Vfs, path: &Path, sync_header: bool) -> Result<WalOpen> {
        if !vfs.exists(path) {
            return Ok(WalOpen {
                wal: Wal::create(vfs, path, sync_header)?,
                discarded_frames: 0,
            });
        }
        let file = vfs.open(path, OpenMode::Open)?;
        let len = file.len()?;
        if len < WAL_HEADER {
            // Torn header: treat as empty.
            drop(file);
            return Ok(WalOpen {
                wal: Wal::create(vfs, path, sync_header)?,
                discarded_frames: 0,
            });
        }
        let mut hdr = [0u8; WAL_HEADER as usize];
        file.read_exact_at(&mut hdr, 0)?;
        let magic = u64::from_le_bytes(hdr[..8].try_into().unwrap());
        if magic != WAL_MAGIC {
            return Err(StorageError::BadHeader("wal magic mismatch".into()));
        }
        let page_size = u32::from_le_bytes(hdr[8..12].try_into().unwrap());
        if page_size as usize != PAGE_SIZE {
            return Err(StorageError::BadHeader(format!(
                "wal page size {page_size} != {PAGE_SIZE}"
            )));
        }

        let mut index = WalIndex::default();
        // PagePuts of the transaction currently being scanned; becomes
        // visible only when its Commit record is reached.
        let mut pending: Vec<FrameMeta> = Vec::new();
        let mut open_txid: Option<u64> = None;
        let mut committed_end = WAL_HEADER;
        let mut max_seq = 0u64;
        let mut parsed_pages = 0u64;
        let mut published_pages = 0u64;
        let mut rh = [0u8; RECORD_HEADER as usize];
        let mut img = vec![0u8; PAGE_SIZE];
        let mut pos = WAL_HEADER;
        loop {
            if pos + RECORD_HEADER > len {
                break; // torn record header
            }
            file.read_exact_at(&mut rh, pos)?;
            let kind = u32::from_le_bytes(rh[0..4].try_into().unwrap());
            let page = u32::from_le_bytes(rh[4..8].try_into().unwrap());
            let db_size = u32::from_le_bytes(rh[8..12].try_into().unwrap());
            let txid = u64::from_le_bytes(rh[16..24].try_into().unwrap());
            let seq = u64::from_le_bytes(rh[24..32].try_into().unwrap());
            let stored_ck = u64::from_le_bytes(rh[32..40].try_into().unwrap());
            let body: &[u8] = match kind {
                KIND_PAGE_PUT => {
                    if pos + PAGE_RECORD_SIZE > len {
                        parsed_pages += 1; // torn page image: discarded
                        break;
                    }
                    file.read_exact_at(&mut img, pos + RECORD_HEADER)?;
                    &img
                }
                KIND_BEGIN | KIND_COMMIT => &[],
                _ => break, // unknown kind: torn/garbage tail
            };
            if record_checksum(kind, page, db_size, txid, seq, body) != stored_ck {
                if kind == KIND_PAGE_PUT {
                    parsed_pages += 1; // corrupt page record: discarded
                }
                break; // torn record: stop recovery here
            }
            max_seq = max_seq.max(seq);
            match kind {
                KIND_BEGIN => {
                    pending.clear();
                    open_txid = Some(txid);
                    pos += RECORD_HEADER;
                }
                KIND_PAGE_PUT => {
                    if open_txid != Some(txid) {
                        break; // record outside its transaction: torn
                    }
                    parsed_pages += 1;
                    pending.push(FrameMeta {
                        page,
                        seq,
                        offset: pos + RECORD_HEADER,
                    });
                    pos += PAGE_RECORD_SIZE;
                }
                _ => {
                    // Commit: publish the pending run atomically.
                    if open_txid != Some(txid) {
                        break;
                    }
                    for m in pending.drain(..) {
                        let fi = index.frames.len() as u32;
                        index.by_page.entry(m.page).or_default().push(fi);
                        index.frames.push(m);
                        published_pages += 1;
                    }
                    index.committed_seq = seq;
                    index.db_size = db_size;
                    open_txid = None;
                    pos += RECORD_HEADER;
                    committed_end = pos;
                }
            }
        }
        let discarded = parsed_pages - published_pages;
        // Truncate any torn/uncommitted tail so appends stay contiguous.
        file.set_len(committed_end)?;
        index.published_end = committed_end;
        let next = max_seq.max(index.committed_seq) + 1;
        // Everything recovery accepted is on disk by definition; seed
        // the durable watermark there so only new commits fsync.
        let synced = index.committed_seq;
        Ok(WalOpen {
            wal: Wal {
                file,
                path: path.to_owned(),
                index: parking_lot::RwLock::new(index),
                next_seq: parking_lot::Mutex::new(next),
                pending_tail: parking_lot::Mutex::new(PendingTail {
                    end: committed_end,
                    begun: None,
                }),
                group: GroupCommit::new(synced),
            },
            discarded_frames: discarded,
        })
    }

    /// Appends one transaction's remaining dirty pages as `PagePut`
    /// records followed by a `Commit` record (preceded by a `Begin`
    /// unless [`Wal::spill`] already wrote one for `txid`), then
    /// publishes the whole run — including earlier spilled records — to
    /// the index. Returns the commit sequence number and each page's
    /// `(image offset, seq)`. Called with the writer lock held.
    /// Durability is separate: call [`Wal::sync_committed`] (after
    /// releasing the writer lock) before acking.
    pub fn append_commit(
        &self,
        txid: u64,
        pages: &[(PageId, &PageData)],
        db_size: u32,
    ) -> Result<(u64, Vec<(u64, u64)>)> {
        assert!(!pages.is_empty(), "empty commits are elided by the store");
        let (placed, commit_seq) = self.append_records(txid, pages, Some(db_size))?;
        let commit_seq = commit_seq.expect("commit record was appended");
        self.publish(db_size, commit_seq)?;
        Ok((commit_seq, placed))
    }

    /// Convenience: [`Wal::append_commit`] followed, when `sync` is
    /// set, by [`Wal::sync_committed`].
    pub fn commit(
        &self,
        txid: u64,
        pages: &[(PageId, &PageData)],
        db_size: u32,
        sync: bool,
    ) -> Result<u64> {
        let (commit_seq, _) = self.append_commit(txid, pages, db_size)?;
        if sync {
            self.sync_committed(commit_seq)?;
        }
        Ok(commit_seq)
    }

    /// Blocks until every record up to `upto` is durable, issuing at
    /// most one fsync per *group* of waiting committers: the first
    /// arrival leads and syncs the whole published log; later arrivals
    /// wait for that sync (or the next) to cover them. Returns whether
    /// this caller issued an fsync itself, for I/O accounting. Called
    /// *without* the writer lock, so commits already published keep
    /// flowing while a sync is in flight.
    pub fn sync_committed(&self, upto: u64) -> Result<bool> {
        let mut issued = false;
        let mut st = self.group.state.lock().expect("group lock poisoned");
        loop {
            if st.synced_seq >= upto {
                return Ok(issued);
            }
            if st.leader_active {
                st = self.group.cv.wait(st).expect("group lock poisoned");
                continue;
            }
            st.leader_active = true;
            drop(st);
            // Snapshot the published watermark after taking leadership:
            // the fsync below makes every record appended before this
            // point durable, so the whole group is covered at once.
            let target = self.index.read().committed_seq();
            let res = self.file.sync();
            st = self.group.state.lock().expect("group lock poisoned");
            st.leader_active = false;
            self.group.cv.notify_all();
            match res {
                Ok(()) => {
                    st.synced_seq = st.synced_seq.max(target);
                    issued = true;
                }
                // Waiters retake leadership and surface their own error.
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Advances the durable watermark without an fsync of the WAL —
    /// used when a synced checkpoint has already carried records up to
    /// `seq` into the main file, making a WAL fsync for them redundant.
    pub fn note_durable(&self, seq: u64) {
        let mut st = self.group.state.lock().expect("group lock poisoned");
        if seq > st.synced_seq {
            st.synced_seq = seq;
            self.group.cv.notify_all();
        }
    }

    /// Appends `PagePut` records *without* a `Commit` and without
    /// publishing: the cache-spill path for transactions larger than
    /// memory (e.g. a full index rebuild). The transaction's `Begin`
    /// record is written ahead of the first spilled batch. Spilled
    /// records are invisible to readers and discarded by crash recovery
    /// until a later [`Wal::append_commit`] publishes everything.
    /// Returns `(image offset, seq)` per page. Called with the writer
    /// lock held.
    pub fn spill(&self, txid: u64, pages: &[(PageId, &PageData)]) -> Result<Vec<(u64, u64)>> {
        let (placed, _) = self.append_records(txid, pages, None)?;
        Ok(placed)
    }

    /// Reads a spilled (not yet published) page image back. Only the
    /// writer that spilled it knows the offset, so this needs no locks.
    pub fn read_unpublished_frame(&self, image_offset: u64) -> Result<PageData> {
        self.read_frame(image_offset)
    }

    /// Discards all unpublished records (rollback of a spilling
    /// transaction): truncates the file back to the published tail.
    /// Called with the writer lock held.
    pub fn truncate_unpublished(&self) -> Result<()> {
        let published_end = self.index.read().published_end;
        let mut tail = self.pending_tail.lock();
        if tail.end > published_end {
            self.file.set_len(published_end)?;
            tail.end = published_end;
        }
        tail.begun = None;
        Ok(())
    }

    /// Appends a run of records for `txid`: a lazy `Begin` (first
    /// append of this transaction since the last publish/rollback),
    /// one `PagePut` per page, and — when `commit_db_size` is set — a
    /// trailing `Commit`. Returns each page's `(image offset, seq)`
    /// plus the commit seq, if any. One pwrite: a torn append is a pure
    /// prefix, which recovery handles.
    #[allow(clippy::type_complexity)]
    fn append_records(
        &self,
        txid: u64,
        pages: &[(PageId, &PageData)],
        commit_db_size: Option<u32>,
    ) -> Result<(Vec<(u64, u64)>, Option<u64>)> {
        let (start_off, base_seq, need_begin) = {
            let mut tail = self.pending_tail.lock();
            let need_begin = tail.begun != Some(txid);
            let records =
                pages.len() as u64 + u64::from(need_begin) + u64::from(commit_db_size.is_some());
            let bytes = pages.len() as u64 * PAGE_RECORD_SIZE
                + (records - pages.len() as u64) * RECORD_HEADER;
            let mut ns = self.next_seq.lock();
            let base = *ns;
            *ns += records;
            let start = tail.end;
            tail.end += bytes;
            tail.begun = Some(txid);
            (start, base, need_begin)
        };
        let mut buf = Vec::with_capacity(
            pages.len() * PAGE_RECORD_SIZE as usize + 2 * RECORD_HEADER as usize,
        );
        let mut seq = base_seq;
        let mut out = Vec::with_capacity(pages.len());
        if need_begin {
            push_record(&mut buf, KIND_BEGIN, 0, 0, txid, seq, &[]);
            seq += 1;
        }
        for (page, data) in pages {
            let image_off = start_off + buf.len() as u64 + RECORD_HEADER;
            push_record(&mut buf, KIND_PAGE_PUT, *page, 0, txid, seq, &data[..]);
            out.push((image_off, seq));
            seq += 1;
        }
        let commit_seq = commit_db_size.map(|db_size| {
            push_record(&mut buf, KIND_COMMIT, 0, db_size, txid, seq, &[]);
            seq
        });
        self.file.write_all_at(&buf, start_off)?;
        Ok((out, commit_seq))
    }

    /// Publishes every appended-but-unpublished record up to the
    /// current pending tail: readers beginning after this see the new
    /// snapshot.
    fn publish(&self, db_size: u32, commit_seq: u64) -> Result<()> {
        let mut tail = self.pending_tail.lock();
        let end = tail.end;
        tail.begun = None;
        let mut index = self.index.write();
        let mut pos = index.published_end;
        let mut rh = [0u8; RECORD_HEADER as usize];
        while pos < end {
            // Re-read the record header to learn kind/page/seq; cheaper
            // to track in memory, but commit is not the hot path and
            // this keeps spill bookkeeping entirely inside the WAL.
            self.file.read_exact_at(&mut rh, pos)?;
            let kind = u32::from_le_bytes(rh[0..4].try_into().unwrap());
            let page = u32::from_le_bytes(rh[4..8].try_into().unwrap());
            let seq = u64::from_le_bytes(rh[24..32].try_into().unwrap());
            if kind == KIND_PAGE_PUT {
                let fi = index.frames.len() as u32;
                index.by_page.entry(page).or_default().push(fi);
                index.frames.push(FrameMeta {
                    page,
                    seq,
                    offset: pos + RECORD_HEADER,
                });
                pos += PAGE_RECORD_SIZE;
            } else {
                pos += RECORD_HEADER;
            }
        }
        index.committed_seq = commit_seq;
        index.db_size = db_size;
        index.published_end = end;
        Ok(())
    }

    /// Reads the page image at `image_offset` (from
    /// [`WalIndex::find_versioned`] / [`WalIndex::latest_per_page`]).
    pub fn read_frame(&self, image_offset: u64) -> Result<PageData> {
        let mut page = PageData::zeroed();
        self.file.read_exact_at(&mut page[..], image_offset)?;
        Ok(page)
    }

    /// Shared read access to the index.
    pub fn index(&self) -> parking_lot::RwLockReadGuard<'_, WalIndex> {
        self.index.read()
    }

    /// Truncates the log back to an empty state after a checkpoint has
    /// copied all page images into the main file. Called with the
    /// writer lock held and no readers below the checkpointed snapshot.
    pub fn reset(&self, sync: bool) -> Result<()> {
        self.file.set_len(WAL_HEADER)?;
        if sync {
            self.file.sync()?;
        }
        let mut tail = self.pending_tail.lock();
        tail.end = WAL_HEADER;
        tail.begun = None;
        let mut index = self.index.write();
        let committed = index.committed_seq;
        let db_size = index.db_size;
        *index = WalIndex::default();
        // The committed watermark survives the reset: snapshots are
        // logical versions, not file offsets.
        index.committed_seq = committed;
        index.db_size = db_size;
        Ok(())
    }

    /// Path of the WAL file (used by crash-simulation tests).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Serializes one record (header + optional page image) into `buf`.
fn push_record(
    buf: &mut Vec<u8>,
    kind: u32,
    page: PageId,
    db_size: u32,
    txid: u64,
    seq: u64,
    body: &[u8],
) {
    let ck = record_checksum(kind, page, db_size, txid, seq, body);
    buf.extend_from_slice(&kind.to_le_bytes());
    buf.extend_from_slice(&page.to_le_bytes());
    buf.extend_from_slice(&db_size.to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes()); // reserved
    buf.extend_from_slice(&txid.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&ck.to_le_bytes());
    buf.extend_from_slice(body);
}

/// Checksum covering the record header fields and the page image
/// (empty for `Begin`/`Commit` records).
fn record_checksum(kind: u32, page: PageId, db_size: u32, txid: u64, seq: u64, body: &[u8]) -> u64 {
    let mut hdr = [0u8; 28];
    hdr[0..4].copy_from_slice(&kind.to_le_bytes());
    hdr[4..8].copy_from_slice(&page.to_le_bytes());
    hdr[8..12].copy_from_slice(&db_size.to_le_bytes());
    hdr[12..20].copy_from_slice(&txid.to_le_bytes());
    hdr[20..28].copy_from_slice(&seq.to_le_bytes());
    let h = fnv1a(0, &hdr);
    fnv1a(h, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::StdVfs;

    fn page_filled(b: u8) -> PageData {
        let mut p = PageData::zeroed();
        p.iter_mut().for_each(|x| *x = b);
        p
    }

    fn create(path: &Path) -> Wal {
        Wal::create(&StdVfs, path, true).unwrap()
    }

    fn reopen(path: &Path) -> WalOpen {
        Wal::open(&StdVfs, path, true).unwrap()
    }

    #[test]
    fn commit_and_lookup() {
        let dir = tempfile::tempdir().unwrap();
        let wal = create(&dir.path().join("w.wal"));
        let p1 = page_filled(1);
        let p2 = page_filled(2);
        let seq = wal.commit(1, &[(5, &p1), (9, &p2)], 10, false).unwrap();
        // Begin + two PagePuts + Commit consume four seqs.
        assert_eq!(seq, 4);
        let idx = wal.index();
        assert_eq!(idx.committed_seq(), 4);
        assert_eq!(idx.db_size(), Some(10));
        let f5 = idx.find(5, seq).unwrap();
        let f9 = idx.find(9, seq).unwrap();
        drop(idx);
        assert_eq!(wal.read_frame(f5).unwrap()[0], 1);
        assert_eq!(wal.read_frame(f9).unwrap()[0], 2);
    }

    #[test]
    fn snapshot_sees_only_older_records() {
        let dir = tempfile::tempdir().unwrap();
        let wal = create(&dir.path().join("w.wal"));
        let old = page_filled(1);
        let new = page_filled(2);
        let snap1 = wal.commit(1, &[(5, &old)], 10, false).unwrap();
        let snap2 = wal.commit(2, &[(5, &new)], 10, false).unwrap();
        let idx = wal.index();
        let f_old = idx.find(5, snap1).unwrap();
        let f_new = idx.find(5, snap2).unwrap();
        assert_ne!(f_old, f_new);
        drop(idx);
        assert_eq!(wal.read_frame(f_old).unwrap()[0], 1);
        assert_eq!(wal.read_frame(f_new).unwrap()[0], 2);
        // A snapshot taken before any commit sees nothing.
        assert!(wal.index().find(5, 0).is_none());
    }

    #[test]
    fn recovery_replays_committed_transactions() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("w.wal");
        {
            let wal = create(&path);
            wal.commit(1, &[(1, &page_filled(7))], 3, true).unwrap();
            wal.commit(2, &[(2, &page_filled(8)), (1, &page_filled(9))], 3, true)
                .unwrap();
            // Dropped without checkpoint: simulates a crash.
        }
        let opened = reopen(&path);
        assert_eq!(opened.discarded_frames, 0);
        let wal = opened.wal;
        let idx = wal.index();
        assert_eq!(idx.frame_count(), 3);
        let snap = idx.committed_seq();
        let f1 = idx.find(1, snap).unwrap();
        drop(idx);
        assert_eq!(wal.read_frame(f1).unwrap()[0], 9, "newest version wins");
    }

    #[test]
    fn recovery_discards_torn_tail() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("w.wal");
        {
            let wal = create(&path);
            wal.commit(1, &[(1, &page_filled(7))], 3, true).unwrap();
            wal.commit(2, &[(2, &page_filled(8))], 3, true).unwrap();
        }
        // Corrupt the second transaction's page image -> checksum fails.
        {
            use std::os::unix::fs::FileExt;
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            // First txn: Begin + PagePut + Commit; second txn's image
            // sits one Begin + one record header past that.
            let off = WAL_HEADER
                + (RECORD_HEADER + PAGE_RECORD_SIZE + RECORD_HEADER) // txn 1
                + RECORD_HEADER // txn 2 Begin
                + RECORD_HEADER // txn 2 PagePut header
                + 100;
            f.write_all_at(&[0xFF], off).unwrap();
        }
        let opened = reopen(&path);
        assert_eq!(opened.discarded_frames, 1);
        let idx = opened.wal.index();
        assert_eq!(idx.frame_count(), 1);
        assert!(idx.find(2, idx.committed_seq()).is_none());
        assert!(idx.find(1, idx.committed_seq()).is_some());
    }

    #[test]
    fn recovery_discards_uncommitted_spill() {
        // A Begin + PagePuts with no trailing Commit (a spilling
        // transaction that crashed) must be invisible after recovery.
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("w.wal");
        {
            let wal = create(&path);
            wal.commit(1, &[(1, &page_filled(7))], 3, true).unwrap();
            wal.spill(2, &[(4, &page_filled(9)), (5, &page_filled(10))])
                .unwrap();
        }
        let opened = reopen(&path);
        assert_eq!(opened.discarded_frames, 2);
        let idx = opened.wal.index();
        assert_eq!(idx.frame_count(), 1);
        assert!(idx.find(4, u64::MAX).is_none());
        assert!(idx.find(1, idx.committed_seq()).is_some());
    }

    #[test]
    fn spill_then_commit_publishes_atomically() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("w.wal");
        let wal = create(&path);
        wal.spill(7, &[(4, &page_filled(9))]).unwrap();
        assert_eq!(wal.index().frame_count(), 0, "spill is unpublished");
        let (seq, placed) = wal.append_commit(7, &[(5, &page_filled(10))], 6).unwrap();
        assert_eq!(placed.len(), 1);
        let idx = wal.index();
        assert_eq!(idx.frame_count(), 2, "spilled + committed published");
        assert_eq!(idx.committed_seq(), seq);
        let f4 = idx.find(4, seq).unwrap();
        drop(idx);
        assert_eq!(wal.read_frame(f4).unwrap()[0], 9);
        // Recovery agrees: the whole transaction is visible.
        drop(wal);
        let opened = reopen(&path);
        assert_eq!(opened.discarded_frames, 0);
        assert_eq!(opened.wal.index().frame_count(), 2);
    }

    #[test]
    fn corrupted_commit_record_hides_whole_transaction() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("w.wal");
        {
            let wal = create(&path);
            wal.commit(1, &[(1, &page_filled(7))], 3, true).unwrap();
            wal.commit(2, &[(2, &page_filled(8))], 3, true).unwrap();
        }
        // Flip the stored checksum of the final Commit record (the last
        // 8 bytes of the file).
        {
            use std::os::unix::fs::FileExt;
            let f = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            let len = std::fs::metadata(&path).unwrap().len();
            let mut ck = [0u8; 8];
            f.read_exact_at(&mut ck, len - 8).unwrap();
            ck.iter_mut().for_each(|b| *b ^= 0xA5);
            f.write_all_at(&ck, len - 8).unwrap();
        }
        let opened = reopen(&path);
        assert_eq!(opened.discarded_frames, 1);
        let idx = opened.wal.index();
        assert_eq!(idx.frame_count(), 1);
        assert!(idx.find(2, u64::MAX).is_none(), "uncommitted txn hidden");
    }

    #[test]
    fn truncate_unpublished_discards_spill() {
        let dir = tempfile::tempdir().unwrap();
        let wal = create(&dir.path().join("w.wal"));
        let c1 = wal.commit(1, &[(1, &page_filled(7))], 3, false).unwrap();
        wal.spill(2, &[(4, &page_filled(9))]).unwrap();
        wal.truncate_unpublished().unwrap();
        assert_eq!(wal.index().frame_count(), 1);
        // The next transaction writes a fresh Begin and commits fine.
        let c2 = wal.commit(3, &[(5, &page_filled(1))], 6, false).unwrap();
        assert!(c2 > c1);
        let opened = reopen(wal.path());
        assert_eq!(opened.wal.index().frame_count(), 2);
    }

    #[test]
    fn reset_preserves_watermark() {
        let dir = tempfile::tempdir().unwrap();
        let wal = create(&dir.path().join("w.wal"));
        let snap = wal.commit(1, &[(1, &page_filled(1))], 2, false).unwrap();
        wal.reset(false).unwrap();
        let idx = wal.index();
        assert_eq!(idx.frame_count(), 0);
        assert_eq!(idx.committed_seq(), snap);
        assert!(idx.find(1, snap).is_none(), "records gone after reset");
        drop(idx);
        // Sequence numbers keep increasing after a reset.
        let snap2 = wal.commit(2, &[(1, &page_filled(2))], 2, false).unwrap();
        assert!(snap2 > snap);
    }

    #[test]
    fn sync_committed_is_idempotent_past_watermark() {
        let dir = tempfile::tempdir().unwrap();
        let wal = create(&dir.path().join("w.wal"));
        let seq = wal.commit(1, &[(1, &page_filled(1))], 2, false).unwrap();
        assert!(wal.sync_committed(seq).unwrap(), "first caller syncs");
        assert!(
            !wal.sync_committed(seq).unwrap(),
            "watermark already covers seq: no second fsync"
        );
    }

    #[test]
    fn note_durable_satisfies_waiters_without_fsync() {
        let dir = tempfile::tempdir().unwrap();
        let wal = create(&dir.path().join("w.wal"));
        let seq = wal.commit(1, &[(1, &page_filled(1))], 2, false).unwrap();
        // A synced checkpoint would advance the watermark like this.
        wal.note_durable(seq);
        assert!(!wal.sync_committed(seq).unwrap());
    }

    #[test]
    fn latest_per_page_respects_upto() {
        let dir = tempfile::tempdir().unwrap();
        let wal = create(&dir.path().join("w.wal"));
        let s1 = wal.commit(1, &[(1, &page_filled(1))], 2, false).unwrap();
        let _s2 = wal.commit(2, &[(1, &page_filled(2))], 2, false).unwrap();
        let idx = wal.index();
        let upto_s1 = idx.latest_per_page(s1);
        assert_eq!(upto_s1.len(), 1);
        // The page record's seq is below the commit record's seq.
        assert!(upto_s1[0].2 < s1);
        let all = idx.latest_per_page(u64::MAX);
        assert_eq!(all.len(), 1);
        assert!(all[0].2 > s1);
    }
}
