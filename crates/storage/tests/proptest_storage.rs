//! Property-based tests: the B+tree against a `BTreeMap` model under
//! random operation sequences (including commit/reopen boundaries), and
//! WAL recovery returning exactly the committed prefix.

use std::collections::BTreeMap;

use proptest::prelude::*;

use micronn_storage::{BTree, PageRead, Store, StoreOptions, SyncMode};

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Get(Vec<u8>),
    Scan,
    Commit,
    Reopen,
    Checkpoint,
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small key universe so operations collide often.
    (0u32..400).prop_map(|i| format!("k{i:05}").into_bytes())
}

fn val_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Inline-sized values.
        proptest::collection::vec(any::<u8>(), 0..64),
        // Occasional overflow-sized values.
        proptest::collection::vec(any::<u8>(), 2000..4000),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (key_strategy(), val_strategy()).prop_map(|(k, v)| Op::Insert(k, v)),
        3 => key_strategy().prop_map(Op::Delete),
        2 => key_strategy().prop_map(Op::Get),
        1 => Just(Op::Scan),
        1 => Just(Op::Commit),
        1 => Just(Op::Reopen),
        1 => Just(Op::Checkpoint),
    ]
}

fn opts() -> StoreOptions {
    StoreOptions {
        sync: SyncMode::Off,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn btree_matches_model(ops in proptest::collection::vec(op_strategy(), 1..250)) {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("db");
        let mut store = Store::create(&path, opts()).unwrap();
        // Model of the *committed* state and of the pending txn state.
        let mut committed: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut pending = committed.clone();

        let mut txn = store.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        txn.set_root(0, tree.root());
        txn.commit().unwrap();
        let mut txn = Some(store.begin_write().unwrap());

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let t = txn.as_mut().unwrap();
                    let old = tree.insert(t, &k, &v).unwrap();
                    prop_assert_eq!(old, pending.insert(k, v));
                }
                Op::Delete(k) => {
                    let t = txn.as_mut().unwrap();
                    let old = tree.delete(t, &k).unwrap();
                    prop_assert_eq!(old, pending.remove(&k));
                }
                Op::Get(k) => {
                    let t = txn.as_ref().unwrap();
                    prop_assert_eq!(tree.get(t, &k).unwrap(), pending.get(&k).cloned());
                }
                Op::Scan => {
                    let t = txn.as_ref().unwrap();
                    let got: Vec<_> = tree
                        .scan_all(t)
                        .unwrap()
                        .map(|kv| kv.unwrap())
                        .collect();
                    let want: Vec<_> = pending
                        .iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(got, want);
                }
                Op::Commit => {
                    txn.take().unwrap().commit().unwrap();
                    committed = pending.clone();
                    txn = Some(store.begin_write().unwrap());
                }
                Op::Reopen => {
                    // Abandon the open txn (rollback), drop every
                    // handle, and reopen from disk: only committed
                    // state survives.
                    drop(txn.take());
                    pending = committed.clone();
                    drop(store);
                    store = Store::open(&path, opts()).unwrap();
                    txn = Some(store.begin_write().unwrap());
                    // The tree root is stable; verify via header slot.
                    prop_assert_eq!(txn.as_ref().unwrap().root(0), tree.root());
                }
                Op::Checkpoint => {
                    // Roll back the open txn first so the checkpoint
                    // can run against a quiescent store.
                    drop(txn.take());
                    pending = committed.clone();
                    store.checkpoint().unwrap();
                    txn = Some(store.begin_write().unwrap());
                }
            }
        }
        // Final full validation against the model.
        let t = txn.as_ref().unwrap();
        let got: Vec<_> = tree.scan_all(t).unwrap().map(|kv| kv.unwrap()).collect();
        let want: Vec<_> = pending.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn snapshots_are_immutable_under_later_writes(
        initial in proptest::collection::btree_map(key_strategy(), val_strategy(), 1..40),
        later in proptest::collection::vec((key_strategy(), val_strategy()), 1..40),
    ) {
        let dir = tempfile::tempdir().unwrap();
        let store = Store::create(dir.path().join("db"), opts()).unwrap();
        let mut txn = store.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        for (k, v) in &initial {
            tree.insert(&mut txn, k, v).unwrap();
        }
        txn.commit().unwrap();

        let snapshot_reader = store.begin_read();
        // Mutate heavily after the snapshot.
        let mut txn = store.begin_write().unwrap();
        for (k, v) in &later {
            tree.insert(&mut txn, k, v).unwrap();
        }
        for k in initial.keys().take(initial.len() / 2) {
            tree.delete(&mut txn, k).unwrap();
        }
        txn.commit().unwrap();

        // The old reader still sees exactly the initial state.
        let got: Vec<_> = tree
            .scan_all(&snapshot_reader)
            .unwrap()
            .map(|kv| kv.unwrap())
            .collect();
        let want: Vec<_> = initial.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn recovery_preserves_committed_prefix(
        batches in proptest::collection::vec(
            proptest::collection::vec((key_strategy(), val_strategy()), 1..10),
            1..8,
        ),
        crash_after in 0usize..8,
    ) {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("db");
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let tree_root;
        {
            let store = Store::create(&path, opts()).unwrap();
            let mut txn = store.begin_write().unwrap();
            let tree = BTree::create(&mut txn).unwrap();
            tree_root = tree.root();
            txn.set_root(0, tree_root);
            txn.commit().unwrap();
            let commit_upto = crash_after.min(batches.len());
            for (i, batch) in batches.iter().enumerate() {
                let mut txn = store.begin_write().unwrap();
                for (k, v) in batch {
                    tree.insert(&mut txn, k, v).unwrap();
                }
                if i < commit_upto {
                    txn.commit().unwrap();
                    for (k, v) in batch {
                        model.insert(k.clone(), v.clone());
                    }
                } else {
                    drop(txn); // "crash" before commit
                    break;
                }
            }
            // Store dropped without checkpoint: recovery must replay
            // the WAL on reopen.
        }
        let store = Store::open(&path, opts()).unwrap();
        let r = store.begin_read();
        let tree = BTree::open(r.root(0));
        prop_assert_eq!(tree.root(), tree_root);
        let got: Vec<_> = tree.scan_all(&r).unwrap().map(|kv| kv.unwrap()).collect();
        let want: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(got, want);
    }
}
