//! Failure injection: simulated crashes, torn writes, and corruption,
//! verifying that recovery always restores exactly the last committed
//! state (§2.1's durability/consistency requirements, inherited from
//! the WAL design).

use std::fs::OpenOptions;
use std::os::unix::fs::FileExt;

use micronn_storage::{BTree, PageRead, Store, StoreOptions, SyncMode, PAGE_SIZE};

fn opts() -> StoreOptions {
    StoreOptions {
        sync: SyncMode::Off,
        ..Default::default()
    }
}

/// Sets up a store with `commits` committed batches of 10 keys each,
/// returning the path (store dropped = simulated crash: no checkpoint,
/// no clean close).
fn build_and_crash(dir: &std::path::Path, commits: usize) -> std::path::PathBuf {
    let path = dir.join("db");
    let store = Store::create(&path, opts()).unwrap();
    let mut txn = store.begin_write().unwrap();
    let tree = BTree::create(&mut txn).unwrap();
    txn.set_root(0, tree.root());
    txn.commit().unwrap();
    for c in 0..commits {
        let mut txn = store.begin_write().unwrap();
        for i in 0..10 {
            tree.insert(
                &mut txn,
                format!("key-{c:03}-{i:02}").as_bytes(),
                format!("val-{c}-{i}").as_bytes(),
            )
            .unwrap();
        }
        txn.commit().unwrap();
    }
    path
}

fn count_rows(path: &std::path::Path) -> u64 {
    let store = Store::open(path, opts()).unwrap();
    let r = store.begin_read();
    let tree = BTree::open(r.root(0));
    tree.count(&r).unwrap()
}

#[test]
fn torn_wal_tail_loses_only_the_torn_commit() {
    let dir = tempfile::tempdir().unwrap();
    let path = build_and_crash(dir.path(), 5);
    let wal = {
        let mut os = path.as_os_str().to_owned();
        os.push("-wal");
        std::path::PathBuf::from(os)
    };
    // Tear the WAL: truncate to a point strictly inside the last
    // commit's frame batch.
    let len = std::fs::metadata(&wal).unwrap().len();
    let f = OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(len - (PAGE_SIZE as u64 / 2)).unwrap();
    drop(f);
    // The torn commit (10 rows) is gone; everything earlier survives.
    let rows = count_rows(&path);
    assert!(rows < 50, "torn tail must drop the last commit, got {rows}");
    assert!(rows >= 40, "earlier commits must survive, got {rows}");
    assert_eq!(rows % 10, 0, "recovery lands on a commit boundary");
}

#[test]
fn corrupted_wal_byte_stops_recovery_at_prior_commit() {
    let dir = tempfile::tempdir().unwrap();
    let path = build_and_crash(dir.path(), 5);
    let wal = {
        let mut os = path.as_os_str().to_owned();
        os.push("-wal");
        std::path::PathBuf::from(os)
    };
    // Flip a payload byte roughly 60% into the log: checksum
    // validation must cut recovery there.
    let len = std::fs::metadata(&wal).unwrap().len();
    let f = OpenOptions::new().write(true).open(&wal).unwrap();
    let mut probe = [0u8; 1];
    let off = len * 6 / 10;
    // Read-modify-write so we definitely change the byte.
    OpenOptions::new()
        .read(true)
        .open(&wal)
        .unwrap()
        .read_exact_at(&mut probe, off)
        .unwrap();
    f.write_all_at(&[probe[0] ^ 0xFF], off).unwrap();
    drop(f);
    let rows = count_rows(&path);
    assert!(rows < 50, "corruption must drop later commits, got {rows}");
    assert_eq!(rows % 10, 0, "recovery lands on a commit boundary");
}

#[test]
fn deleted_wal_falls_back_to_checkpointed_state() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("db");
    {
        let store = Store::create(&path, opts()).unwrap();
        let mut txn = store.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        txn.set_root(0, tree.root());
        txn.commit().unwrap();
        let mut txn = store.begin_write().unwrap();
        tree.insert(&mut txn, b"durable", b"yes").unwrap();
        txn.commit().unwrap();
        assert!(store.checkpoint().unwrap());
        // Post-checkpoint commit lives only in the WAL.
        let mut txn = store.begin_write().unwrap();
        tree.insert(&mut txn, b"volatile", b"maybe").unwrap();
        txn.commit().unwrap();
    }
    // Simulate losing the WAL file entirely (worst case).
    let mut os = path.as_os_str().to_owned();
    os.push("-wal");
    std::fs::remove_file(std::path::PathBuf::from(os)).unwrap();

    let store = Store::open(&path, opts()).unwrap();
    let r = store.begin_read();
    let tree = BTree::open(r.root(0));
    assert_eq!(tree.get(&r, b"durable").unwrap(), Some(b"yes".to_vec()));
    assert_eq!(tree.get(&r, b"volatile").unwrap(), None);
}

#[test]
fn garbage_main_file_is_rejected_loudly() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("db");
    std::fs::write(&path, vec![0xAB; PAGE_SIZE]).unwrap();
    let err = Store::open(&path, opts()).unwrap_err();
    assert!(err.to_string().contains("header"), "got: {err}");
}

#[test]
fn repeated_crash_recover_cycles_converge() {
    // Crash-loop resilience: open → write → crash, many times; every
    // reopen must recover and accept new writes.
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("db");
    {
        let store = Store::create(&path, opts()).unwrap();
        let mut txn = store.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        txn.set_root(0, tree.root());
        txn.commit().unwrap();
    }
    for round in 0..10u32 {
        let store = Store::open(&path, opts()).unwrap();
        let r = store.begin_read();
        let tree = BTree::open(r.root(0));
        assert_eq!(tree.count(&r).unwrap(), round as u64);
        drop(r);
        let mut txn = store.begin_write().unwrap();
        tree.insert(&mut txn, &round.to_be_bytes(), b"x").unwrap();
        txn.commit().unwrap();
        // Leave an uncommitted txn hanging to make the crash dirtier.
        let mut txn = store.begin_write().unwrap();
        tree.insert(&mut txn, b"zzz-uncommitted", b"x").unwrap();
        std::mem::forget(txn);
        // store dropped here: crash.
    }
    assert_eq!(count_rows(&path), 10);
}

#[test]
fn checkpoint_crash_between_main_write_and_wal_reset_is_safe() {
    // If the process dies after copying frames into the main file but
    // before truncating the WAL, replaying the WAL is idempotent (same
    // page images). Simulate by copying the WAL aside, checkpointing,
    // then restoring the WAL as if truncation never happened.
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("db");
    let wal_path = {
        let mut os = path.as_os_str().to_owned();
        os.push("-wal");
        std::path::PathBuf::from(os)
    };
    {
        let store = Store::create(&path, opts()).unwrap();
        let mut txn = store.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        txn.set_root(0, tree.root());
        for i in 0..200u32 {
            tree.insert(&mut txn, &i.to_be_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        txn.commit().unwrap();
        std::fs::copy(&wal_path, dir.path().join("wal-backup")).unwrap();
        assert!(store.checkpoint().unwrap());
    }
    // "Un-truncate" the WAL: the main file already holds everything.
    std::fs::copy(dir.path().join("wal-backup"), &wal_path).unwrap();
    let store = Store::open(&path, opts()).unwrap();
    let r = store.begin_read();
    let tree = BTree::open(r.root(0));
    assert_eq!(tree.count(&r).unwrap(), 200);
    for i in [0u32, 57, 199] {
        assert_eq!(
            tree.get(&r, &i.to_be_bytes()).unwrap(),
            Some(i.to_le_bytes().to_vec())
        );
    }
}
