//! Failure injection: simulated crashes, torn writes, and corruption,
//! verifying that recovery always restores exactly the last committed
//! state (§2.1's durability/consistency requirements, inherited from
//! the WAL design). The byte-level corruption tests operate on real
//! files; the power-loss tests run the store on [`SimVfs`] and drop
//! unsynced writes at deterministic points.

use std::fs::OpenOptions;
use std::os::unix::fs::FileExt;

use micronn_storage::{
    BTree, CrashPlan, PageRead, PowerCut, SimVfs, Store, StoreOptions, SyncMode, PAGE_SIZE,
};

fn opts() -> StoreOptions {
    StoreOptions {
        sync: SyncMode::Off,
        ..Default::default()
    }
}

/// Sets up a store with `commits` committed batches of 10 keys each,
/// returning the path (store dropped = simulated crash: no checkpoint,
/// no clean close).
fn build_and_crash(dir: &std::path::Path, commits: usize) -> std::path::PathBuf {
    let path = dir.join("db");
    let store = Store::create(&path, opts()).unwrap();
    let mut txn = store.begin_write().unwrap();
    let tree = BTree::create(&mut txn).unwrap();
    txn.set_root(0, tree.root());
    txn.commit().unwrap();
    for c in 0..commits {
        let mut txn = store.begin_write().unwrap();
        for i in 0..10 {
            tree.insert(
                &mut txn,
                format!("key-{c:03}-{i:02}").as_bytes(),
                format!("val-{c}-{i}").as_bytes(),
            )
            .unwrap();
        }
        txn.commit().unwrap();
    }
    path
}

fn count_rows(path: &std::path::Path) -> u64 {
    let store = Store::open(path, opts()).unwrap();
    let r = store.begin_read();
    let tree = BTree::open(r.root(0));
    tree.count(&r).unwrap()
}

#[test]
fn torn_wal_tail_loses_only_the_torn_commit() {
    let dir = tempfile::tempdir().unwrap();
    let path = build_and_crash(dir.path(), 5);
    let wal = {
        let mut os = path.as_os_str().to_owned();
        os.push("-wal");
        std::path::PathBuf::from(os)
    };
    // Tear the WAL: truncate to a point strictly inside the last
    // commit's frame batch.
    let len = std::fs::metadata(&wal).unwrap().len();
    let f = OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(len - (PAGE_SIZE as u64 / 2)).unwrap();
    drop(f);
    // The torn commit (10 rows) is gone; everything earlier survives.
    let rows = count_rows(&path);
    assert!(rows < 50, "torn tail must drop the last commit, got {rows}");
    assert!(rows >= 40, "earlier commits must survive, got {rows}");
    assert_eq!(rows % 10, 0, "recovery lands on a commit boundary");
}

#[test]
fn corrupted_wal_byte_stops_recovery_at_prior_commit() {
    let dir = tempfile::tempdir().unwrap();
    let path = build_and_crash(dir.path(), 5);
    let wal = {
        let mut os = path.as_os_str().to_owned();
        os.push("-wal");
        std::path::PathBuf::from(os)
    };
    // Flip a payload byte roughly 60% into the log: checksum
    // validation must cut recovery there.
    let len = std::fs::metadata(&wal).unwrap().len();
    let f = OpenOptions::new().write(true).open(&wal).unwrap();
    let mut probe = [0u8; 1];
    let off = len * 6 / 10;
    // Read-modify-write so we definitely change the byte.
    OpenOptions::new()
        .read(true)
        .open(&wal)
        .unwrap()
        .read_exact_at(&mut probe, off)
        .unwrap();
    f.write_all_at(&[probe[0] ^ 0xFF], off).unwrap();
    drop(f);
    let rows = count_rows(&path);
    assert!(rows < 50, "corruption must drop later commits, got {rows}");
    assert_eq!(rows % 10, 0, "recovery lands on a commit boundary");
}

#[test]
fn corrupted_final_commit_frame_checksum_truncates_to_prior_commit() {
    // Regression: the final record of the log is the last transaction's
    // Commit marker. Corrupting its *stored checksum field* (not the
    // page payload) must make recovery drop exactly that transaction
    // and truncate the torn tail — never error the open.
    let dir = tempfile::tempdir().unwrap();
    let path = build_and_crash(dir.path(), 5);
    let wal = {
        let mut os = path.as_os_str().to_owned();
        os.push("-wal");
        std::path::PathBuf::from(os)
    };
    let len = std::fs::metadata(&wal).unwrap().len();
    // Record header layout ends with the checksum as its final 8
    // bytes, and a Commit record is header-only, so the stored
    // checksum of the last Commit occupies the last 8 bytes of
    // the file.
    let ck_off = len - 8;
    let f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(&wal)
        .unwrap();
    let mut ck = [0u8; 8];
    f.read_exact_at(&mut ck, ck_off).unwrap();
    ck.iter_mut().for_each(|b| *b ^= 0xA5);
    f.write_all_at(&ck, ck_off).unwrap();
    drop(f);

    let rows = count_rows(&path);
    assert_eq!(rows, 40, "exactly the final commit is lost");
    // The torn tail was truncated: appends stay contiguous and new
    // commits land cleanly after recovery.
    let store = Store::open(&path, opts()).unwrap();
    let r = store.begin_read();
    let tree = BTree::open(r.root(0));
    drop(r);
    let mut txn = store.begin_write().unwrap();
    tree.insert(&mut txn, b"post-recovery", b"ok").unwrap();
    txn.commit().unwrap();
    let r = store.begin_read();
    assert_eq!(tree.count(&r).unwrap(), 41);
    assert_eq!(
        tree.get(&r, b"post-recovery").unwrap(),
        Some(b"ok".to_vec())
    );
}

/// Store options running on a simulated file system with full
/// durability (acked commits must survive a power cut).
fn sim_opts(sim: &SimVfs) -> StoreOptions {
    StoreOptions {
        sync: SyncMode::Normal,
        vfs: sim.handle(),
        ..Default::default()
    }
}

#[test]
fn power_cut_mid_checkpoint_loses_nothing() {
    // A checkpoint copies frames into the main file, syncs it, then
    // truncates the WAL. Crash it at *every* operation along the way
    // and drop all unsynced writes: the WAL replay must restore every
    // committed row no matter where the cut lands.
    let path = std::path::Path::new("/sim/db");
    let total = {
        let sim = SimVfs::new();
        let store = Store::create(path, sim_opts(&sim)).unwrap();
        let mut txn = store.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        txn.set_root(0, tree.root());
        txn.commit().unwrap();
        for c in 0..20u32 {
            let mut txn = store.begin_write().unwrap();
            tree.insert(&mut txn, &c.to_be_bytes(), b"v").unwrap();
            txn.commit().unwrap();
        }
        sim.arm(CrashPlan {
            at_op: u64::MAX,
            torn_eighths: None,
        });
        assert!(store.checkpoint().unwrap());
        sim.ops()
    };
    assert!(total >= 3, "checkpoint must issue several operations");
    for at_op in 1..=total {
        let sim = SimVfs::new();
        let store = Store::create(path, sim_opts(&sim)).unwrap();
        let mut txn = store.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        txn.set_root(0, tree.root());
        txn.commit().unwrap();
        for c in 0..20u32 {
            let mut txn = store.begin_write().unwrap();
            tree.insert(&mut txn, &c.to_be_bytes(), b"v").unwrap();
            txn.commit().unwrap();
        }
        sim.arm(CrashPlan {
            at_op,
            torn_eighths: Some(4),
        });
        assert!(
            store.checkpoint().is_err(),
            "checkpoint at op {at_op} must hit the injected crash"
        );
        drop(store);
        sim.power_cut(PowerCut::DropUnsynced);
        let store = Store::open(path, sim_opts(&sim)).unwrap();
        let r = store.begin_read();
        let tree = BTree::open(r.root(0));
        assert_eq!(
            tree.count(&r).unwrap(),
            20,
            "op {at_op}: committed rows lost"
        );
        for c in 0..20u32 {
            assert_eq!(
                tree.get(&r, &c.to_be_bytes()).unwrap(),
                Some(b"v".to_vec()),
                "op {at_op}: row {c} lost"
            );
        }
    }
}

#[test]
fn power_cut_drops_unsynced_commits_only_with_sync_off() {
    // With SyncMode::Off nothing is promised past the last sync; with
    // Normal, every acked commit survives DropUnsynced.
    for (sync, expect_all) in [(SyncMode::Off, false), (SyncMode::Normal, true)] {
        let sim = SimVfs::new();
        let path = std::path::Path::new("/sim/db");
        let mut o = sim_opts(&sim);
        o.sync = sync;
        {
            let store = Store::create(path, o.clone()).unwrap();
            let mut txn = store.begin_write().unwrap();
            let tree = BTree::create(&mut txn).unwrap();
            txn.set_root(0, tree.root());
            txn.commit().unwrap();
            for c in 0..5u32 {
                let mut txn = store.begin_write().unwrap();
                tree.insert(&mut txn, &c.to_be_bytes(), b"v").unwrap();
                txn.commit().unwrap();
            }
        }
        sim.power_cut(PowerCut::DropUnsynced);
        // Under SyncMode::Off even the header may be unsynced: the
        // open itself is allowed to fail (nothing was promised).
        let rows = match Store::open(path, o) {
            Ok(store) => {
                let r = store.begin_read();
                if r.root(0) != 0 {
                    BTree::open(r.root(0)).count(&r).unwrap()
                } else {
                    0
                }
            }
            Err(e) => {
                assert!(!expect_all, "SyncMode::Normal open failed: {e}");
                0
            }
        };
        if expect_all {
            assert_eq!(rows, 5, "SyncMode::Normal: every acked commit survives");
        } else {
            assert!(rows < 5, "SyncMode::Off: unsynced commits are lost");
        }
    }
}

#[test]
fn deleted_wal_falls_back_to_checkpointed_state() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("db");
    {
        let store = Store::create(&path, opts()).unwrap();
        let mut txn = store.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        txn.set_root(0, tree.root());
        txn.commit().unwrap();
        let mut txn = store.begin_write().unwrap();
        tree.insert(&mut txn, b"durable", b"yes").unwrap();
        txn.commit().unwrap();
        assert!(store.checkpoint().unwrap());
        // Post-checkpoint commit lives only in the WAL.
        let mut txn = store.begin_write().unwrap();
        tree.insert(&mut txn, b"volatile", b"maybe").unwrap();
        txn.commit().unwrap();
    }
    // Simulate losing the WAL file entirely (worst case).
    let mut os = path.as_os_str().to_owned();
    os.push("-wal");
    std::fs::remove_file(std::path::PathBuf::from(os)).unwrap();

    let store = Store::open(&path, opts()).unwrap();
    let r = store.begin_read();
    let tree = BTree::open(r.root(0));
    assert_eq!(tree.get(&r, b"durable").unwrap(), Some(b"yes".to_vec()));
    assert_eq!(tree.get(&r, b"volatile").unwrap(), None);
}

#[test]
fn corrupted_node_pages_error_instead_of_panicking() {
    // Regression (found by driving `fsck` over a byte-corrupted file):
    // garbage inside a B+tree node page used to panic in the zero-copy
    // cell accessors (out-of-range slice). Structural validation at the
    // fetch boundary must turn ANY byte corruption into
    // `StorageError::Corrupt` so fsck can report it and keep walking.
    let dir = tempfile::tempdir().unwrap();
    let path = build_and_crash(dir.path(), 8);
    // Fold the WAL into the main file, then shotgun bytes across it.
    {
        let store = Store::open(&path, opts()).unwrap();
        assert!(store.checkpoint().unwrap());
    }
    let len = std::fs::metadata(&path).unwrap().len();
    for trial in 0..16u64 {
        let original = std::fs::read(&path).unwrap();
        {
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            // Deterministic pseudo-random 64-byte blast per trial.
            let off = (trial * 2654435761) % (len - 64);
            f.write_all_at(&[0xFF; 64], off).unwrap();
        }
        let outcome = std::panic::catch_unwind(|| {
            let store = match Store::open(&path, opts()) {
                Ok(s) => s,
                Err(_) => return, // rejected loudly: fine
            };
            let r = store.begin_read();
            let tree = BTree::open(r.root(0));
            // Whatever the corruption hit, traversal must return
            // Ok or Err — never panic.
            let _ = tree.count(&r);
            let _ = tree.get(&r, b"key-003-05");
            if let Ok(cursor) =
                tree.range(&r, std::ops::Bound::Unbounded, std::ops::Bound::Unbounded)
            {
                for kv in cursor {
                    if kv.is_err() {
                        break;
                    }
                }
            }
        });
        assert!(outcome.is_ok(), "trial {trial}: corruption caused a panic");
        std::fs::write(&path, original).unwrap();
    }
}

#[test]
fn garbage_main_file_is_rejected_loudly() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("db");
    std::fs::write(&path, vec![0xAB; PAGE_SIZE]).unwrap();
    let err = Store::open(&path, opts()).unwrap_err();
    assert!(err.to_string().contains("header"), "got: {err}");
}

#[test]
fn repeated_crash_recover_cycles_converge() {
    // Crash-loop resilience: open → write → crash, many times; every
    // reopen must recover and accept new writes.
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("db");
    {
        let store = Store::create(&path, opts()).unwrap();
        let mut txn = store.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        txn.set_root(0, tree.root());
        txn.commit().unwrap();
    }
    for round in 0..10u32 {
        let store = Store::open(&path, opts()).unwrap();
        let r = store.begin_read();
        let tree = BTree::open(r.root(0));
        assert_eq!(tree.count(&r).unwrap(), round as u64);
        drop(r);
        let mut txn = store.begin_write().unwrap();
        tree.insert(&mut txn, &round.to_be_bytes(), b"x").unwrap();
        txn.commit().unwrap();
        // Leave an uncommitted txn hanging to make the crash dirtier.
        let mut txn = store.begin_write().unwrap();
        tree.insert(&mut txn, b"zzz-uncommitted", b"x").unwrap();
        std::mem::forget(txn);
        // store dropped here: crash.
    }
    assert_eq!(count_rows(&path), 10);
}

#[test]
fn checkpoint_crash_between_main_write_and_wal_reset_is_safe() {
    // If the process dies after copying frames into the main file but
    // before truncating the WAL, replaying the WAL is idempotent (same
    // page images). Simulate by copying the WAL aside, checkpointing,
    // then restoring the WAL as if truncation never happened.
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("db");
    let wal_path = {
        let mut os = path.as_os_str().to_owned();
        os.push("-wal");
        std::path::PathBuf::from(os)
    };
    {
        let store = Store::create(&path, opts()).unwrap();
        let mut txn = store.begin_write().unwrap();
        let tree = BTree::create(&mut txn).unwrap();
        txn.set_root(0, tree.root());
        for i in 0..200u32 {
            tree.insert(&mut txn, &i.to_be_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        txn.commit().unwrap();
        std::fs::copy(&wal_path, dir.path().join("wal-backup")).unwrap();
        assert!(store.checkpoint().unwrap());
    }
    // "Un-truncate" the WAL: the main file already holds everything.
    std::fs::copy(dir.path().join("wal-backup"), &wal_path).unwrap();
    let store = Store::open(&path, opts()).unwrap();
    let r = store.begin_read();
    let tree = BTree::open(r.root(0));
    assert_eq!(tree.count(&r).unwrap(), 200);
    for i in [0u32, 57, 199] {
        assert_eq!(
            tree.get(&r, &i.to_be_bytes()).unwrap(),
            Some(i.to_le_bytes().to_vec())
        );
    }
}
