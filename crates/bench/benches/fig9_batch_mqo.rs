//! Figure 9: impact of multi-query optimization on batch processing
//! (§4.3.3): (9a) time to process a query batch relative to one query
//! at a time, (9b) amortized single-query latency vs batch size.
//!
//! Also checks the §3.4 claim: ≥30% amortized latency reduction at
//! batch size 512 on the InternalA workload.
//!
//! Expected shape: total batch time grows sub-linearly in batch size,
//! so amortized latency falls; gains diminish once the query×centroid
//! matrix dominates (the paper observes this on DEEPImage's ≈100k
//! centroids).

use micronn::DeviceProfile;
use micronn_bench::{build_micronn, scaled_specs};
use micronn_datasets::generate;

#[global_allocator]
static ALLOC: micronn_bench::TrackingAlloc = micronn_bench::TrackingAlloc;

const K: usize = 100;
const BATCHES: [usize; 5] = [1, 16, 64, 256, 512];

fn main() {
    let specs = scaled_specs();
    println!(
        "Figure 9: batch MQO scaling (k={K}, default probes) — scale {}\n",
        micronn_bench::bench_scale()
    );
    let widths = [12usize, 8, 10, 12, 14, 12];
    micronn_bench::print_header(
        &[
            "dataset",
            "batch",
            "total ms",
            "per-query ms",
            "vs sequential",
            "speedup",
        ],
        &widths,
    );
    let mut internal_a_cut = None;
    for spec in &specs {
        let dataset = generate(spec);
        let bench = build_micronn(&dataset, DeviceProfile::Large, 100);
        let db = &bench.db;

        // Build the query batches by cycling the dataset's queries.
        let make_batch = |size: usize| -> Vec<Vec<f32>> {
            (0..size)
                .map(|i| dataset.query(i % spec.n_queries).to_vec())
                .collect()
        };

        // Baseline: single-query latency (warmed).
        let warmup = make_batch(8);
        db.batch_search(&warmup, K, None).unwrap();
        let single_batch = make_batch(16);
        let (_, d) =
            micronn_bench::time(|| db.batch_search_sequential(&single_batch, K, None).unwrap());
        let single_ms = d.as_secs_f64() * 1e3 / single_batch.len() as f64;

        for &bs in &BATCHES {
            let queries = make_batch(bs);
            let (resp, d) = micronn_bench::time(|| db.batch_search(&queries, K, None).unwrap());
            assert_eq!(resp.results.len(), bs);
            let total_ms = d.as_secs_f64() * 1e3;
            let per_query = total_ms / bs as f64;
            let sequential_est = single_ms * bs as f64;
            let speedup = single_ms / per_query;
            micronn_bench::print_row(
                &[
                    spec.name.to_string(),
                    bs.to_string(),
                    format!("{total_ms:.2}"),
                    format!("{per_query:.3}"),
                    format!("{:.0}%", 100.0 * total_ms / sequential_est),
                    format!("{speedup:.2}x"),
                ],
                &widths,
            );
            if spec.name == "InternalA" && bs == 512 {
                internal_a_cut = Some(1.0 - per_query / single_ms);
            }
        }
        println!();
    }
    if let Some(cut) = internal_a_cut {
        println!(
            "§3.4 claim check — InternalA amortized latency cut at batch 512: {:.0}% (paper: >30%)",
            cut * 100.0
        );
        assert!(
            cut > 0.0,
            "batched execution must amortize per-query latency"
        );
    }
    println!("expected shape (paper Fig.9): sub-linear batch scaling; amortized latency falls with batch size");
}
