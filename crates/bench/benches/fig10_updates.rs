//! Figure 10: full vs incremental index rebuild on a growing collection
//! (§4.3.4).
//!
//! Protocol (paper): bootstrap the index with 50% of InternalA, then at
//! each epoch insert 3% of the remaining vectors and run a 128-query
//! recall@100 batch before and after maintenance. The *FullBuild*
//! strategy rebuilds the whole index every epoch; the *Incremental*
//! strategy flushes the delta into the nearest partitions (updating
//! centroids by running mean) and only full-rebuilds when the average
//! partition size has grown 50% past its baseline. Reported per epoch:
//! (a) average single-query latency, (b) recall@100, (c) rebuild time,
//! (d) number of database row changes.
//!
//! Expected shape: comparable latency and recall (small incremental
//! recall deviation, corrected at the triggered rebuild) with the
//! incremental strategy touching a tiny fraction of the rows (<2% in
//! the paper).
//!
//! **Lifecycle extension** (§3.6 extended): a second phase runs a
//! sustained upsert/delete churn stream (`MICRONN_BENCH_CHURN_OPS`,
//! default 50,000 ops) with the background `IndexMaintainer` enabled
//! and reports, alongside the recall@10 trajectory over the stream:
//! (1) the number of full rebuilds (expected: **zero** — growth is
//! absorbed by local splits/merges), (2) recall@10 against a freshly
//! rebuilt index (expected within 2%), and (3) disk bytes written per
//! maintenance operation vs one full rebuild (expected ≤ 10%).
//! Maintenance I/O is attributed by the maintainer itself, which
//! samples the store's write counters around each pass — tight under
//! the engine's single-writer protocol.

use micronn::{Config, DeviceProfile, MaintainerOptions, MaintenanceStatus, MicroNN, VectorRecord};
use micronn_bench::{mean_recall_at, sample_ground_truth};
use micronn_datasets::{generate, internal_a, Dataset};

#[global_allocator]
static ALLOC: micronn_bench::TrackingAlloc = micronn_bench::TrackingAlloc;

const K: usize = 100;
const EPOCHS: usize = 18;
const QUERY_BATCH: usize = 128;

struct EpochRow {
    latency_ms: f64,
    recall: f64,
    rebuild_s: f64,
    row_changes: u64,
}

fn run_strategy(dataset: &Dataset, incremental: bool) -> Vec<EpochRow> {
    let dir = tempfile::tempdir().unwrap();
    let mut cfg = Config::new(dataset.spec.dim, dataset.spec.metric);
    cfg.store = DeviceProfile::Large.store_options();
    cfg.target_partition_size = 100;
    cfg.default_probes = 8;
    cfg.growth_limit = 1.5;
    cfg.delta_flush_threshold = 1;
    // The paper's protocol: growth has exactly one answer (a full
    // rebuild). The lifecycle split/merge alternative is measured by
    // the churn phase below.
    cfg.lifecycle = false;
    let db = MicroNN::create(dir.path().join("fig10.mnn"), cfg).unwrap();

    let n = dataset.len();
    let bootstrap = n / 2;
    let per_epoch = ((n - bootstrap) * 3 / 100).max(1);

    let mut batch = Vec::new();
    for i in 0..bootstrap {
        batch.push(VectorRecord::new(i as i64, dataset.vector(i).to_vec()));
        if batch.len() == 2000 {
            db.upsert_batch(&batch).unwrap();
            batch.clear();
        }
    }
    db.upsert_batch(&batch).unwrap();
    db.rebuild().unwrap();

    let gt = sample_ground_truth(dataset, K, QUERY_BATCH.min(dataset.spec.n_queries));
    let mut next = bootstrap;
    let mut rows = Vec::new();
    for _epoch in 0..EPOCHS {
        // Insert this epoch's 3%.
        let end = (next + per_epoch).min(n);
        let recs: Vec<VectorRecord> = (next..end)
            .map(|i| VectorRecord::new(i as i64, dataset.vector(i).to_vec()))
            .collect();
        db.upsert_batch(&recs).unwrap();
        next = end;

        // Maintenance under the chosen strategy.
        let before_changes = db.stats().unwrap().row_changes;
        let (_, dur) = micronn_bench::time(|| {
            if incremental {
                // Flush; rebuild only when the monitor demands it.
                if db.maintenance_status().unwrap() == MaintenanceStatus::NeedsRebuild {
                    db.rebuild().unwrap();
                } else {
                    db.flush_delta().unwrap();
                }
            } else {
                db.rebuild().unwrap();
            }
        });
        let row_changes = db.stats().unwrap().row_changes - before_changes;

        // Query batch: adjust probes so the number of vectors scanned
        // stays roughly constant as partitions grow (the paper keeps
        // "the target number of vectors scanned same throughout").
        let stats = db.stats().unwrap();
        let target_scan = 24.0 * 100.0; // 24 probes x target size
        let probes = ((target_scan / stats.avg_partition_size.max(1.0)).round() as usize)
            .clamp(1, stats.partitions.max(1) as usize);
        let queries: Vec<Vec<f32>> = (0..gt.len()).map(|qi| dataset.query(qi).to_vec()).collect();
        let (resp, d) = micronn_bench::time(|| db.batch_search(&queries, K, Some(probes)).unwrap());
        assert_eq!(resp.results.len(), gt.len());
        let latency_ms = d.as_secs_f64() * 1e3 / gt.len() as f64;
        let recall = mean_recall_at(&db, dataset, &gt, K, gt.len(), probes);
        rows.push(EpochRow {
            latency_ms,
            recall,
            rebuild_s: dur.as_secs_f64(),
            row_changes,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Lifecycle churn phase
// ---------------------------------------------------------------------------

/// Churn stream length (one op = one upsert or one delete).
fn churn_ops() -> usize {
    std::env::var("MICRONN_BENCH_CHURN_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000)
}

struct ChurnOutcome {
    /// Disk bytes written by maintenance passes (store write counters
    /// sampled around each pass by the maintainer; the single-writer
    /// protocol keeps attribution tight).
    maintenance_bytes: u64,
    /// Maintenance operations performed (flushes + splits + merges).
    maintenance_ops: u64,
    /// Full rebuilds performed (the acceptance bar is zero).
    rebuilds: u64,
    /// `(op index, recall@10)` samples over the stream.
    trajectory: Vec<(usize, f64)>,
    db: MicroNN,
    _dir: tempfile::TempDir,
}

fn churn_recall(db: &MicroNN, dataset: &Dataset, queries: usize, probes: usize) -> f64 {
    let k = 10;
    let mut total = 0.0;
    for qi in 0..queries {
        let q = dataset.query(qi % dataset.spec.n_queries);
        let exact = db.exact(q, k, None).unwrap();
        let truth: std::collections::HashSet<i64> =
            exact.results.iter().map(|r| r.asset_id).collect();
        let got = db
            .search_with(&micronn::SearchRequest::new(q.to_vec(), k).with_probes(probes))
            .unwrap();
        let hits = got
            .results
            .iter()
            .filter(|r| truth.contains(&r.asset_id))
            .count();
        total += hits as f64 / truth.len().max(1) as f64;
    }
    total / queries as f64
}

/// Runs the churn stream (70% inserts, 30% deletes of the oldest live
/// assets) with the background `IndexMaintainer` enabled; maintenance
/// I/O comes from the maintainer's own per-pass store-counter samples.
fn run_churn(dataset: &Dataset) -> ChurnOutcome {
    let dir = tempfile::tempdir().unwrap();
    let mut cfg = Config::new(dataset.spec.dim, dataset.spec.metric);
    cfg.store = DeviceProfile::Large.store_options();
    cfg.target_partition_size = 100;
    cfg.delta_flush_threshold = 256;
    cfg.lifecycle = true;
    let db = MicroNN::create(dir.path().join("churn.mnn"), cfg).unwrap();

    let n = dataset.len();
    let bootstrap = n / 2;
    let mut batch = Vec::new();
    for i in 0..bootstrap {
        batch.push(VectorRecord::new(i as i64, dataset.vector(i).to_vec()));
        if batch.len() == 2000 {
            db.upsert_batch(&batch).unwrap();
            batch.clear();
        }
    }
    db.upsert_batch(&batch).unwrap();
    db.rebuild().unwrap();

    let maintainer = db.start_maintainer(MaintainerOptions {
        interval: std::time::Duration::from_millis(2),
    });

    let ops = churn_ops();
    let probes = 24;
    let sample_every = (ops / 8).max(1);
    let mut trajectory = Vec::new();
    let mut next_id = bootstrap as i64;
    let mut oldest = 0i64;
    for i in 0..ops {
        if i % 10 < 7 {
            // Recycle dataset vectors under fresh asset ids: the stream
            // follows the base distribution, growing partitions evenly.
            let v = dataset.vector(next_id as usize % n).to_vec();
            db.upsert(VectorRecord::new(next_id, v)).unwrap();
            next_id += 1;
        } else {
            db.delete(oldest).unwrap();
            oldest += 1;
        }
        if i % sample_every == 0 {
            trajectory.push((i, churn_recall(&db, dataset, 16, probes)));
        }
    }

    // Stop the background thread first, then drive the ladder to
    // Healthy so the run ends on a settled index; the foreground is
    // idle here, so sampling store counters around the final pass
    // attributes its bytes exactly too.
    let stats = maintainer.stop();
    let io_before = db.stats().unwrap().store;
    let final_report = db.maybe_maintain().unwrap();
    let final_bytes = db.stats().unwrap().store.since(&io_before).disk_writes()
        * micronn_storage::PAGE_SIZE as u64;
    assert_eq!(stats.errors, 0, "maintainer error: {:?}", stats.last_error);
    let maintenance_ops = stats.flushes
        + stats.splits
        + stats.merges
        + (final_report.flushes() + final_report.splits() + final_report.merges()) as u64;
    let rebuilds = stats.rebuilds + final_report.rebuilds() as u64;
    ChurnOutcome {
        maintenance_bytes: stats.bytes_written + final_bytes,
        maintenance_ops,
        rebuilds,
        trajectory,
        db,
        _dir: dir,
    }
}

fn lifecycle_churn_phase(dataset: &Dataset) {
    let ops = churn_ops();
    println!(
        "\nLifecycle churn: {} upsert/delete ops with the background IndexMaintainer\n",
        ops
    );
    let run = run_churn(dataset);

    let widths = [8usize, 10];
    micronn_bench::print_header(&["op", "recall@10"], &widths);
    for &(i, r) in &run.trajectory {
        micronn_bench::print_row(&[i.to_string(), format!("{r:.3}")], &widths);
    }

    // Recall vs a fresh rebuild of the same collection.
    let probes = 24;
    let lifecycle_recall = churn_recall(&run.db, dataset, 32, probes);
    let rebuild_before = run.db.stats().unwrap().store;
    run.db.rebuild().unwrap();
    let rebuild_bytes = run
        .db
        .stats()
        .unwrap()
        .store
        .since(&rebuild_before)
        .disk_writes()
        * micronn_storage::PAGE_SIZE as u64;
    let rebuilt_recall = churn_recall(&run.db, dataset, 32, probes);

    // Maintenance I/O, amortized per maintenance op.
    let per_op = run.maintenance_bytes / run.maintenance_ops.max(1);
    let ratio = per_op as f64 / rebuild_bytes.max(1) as f64;
    println!(
        "\nmaintenance ops: {} (rebuilds: {}), total maintenance I/O {:.1} MiB",
        run.maintenance_ops,
        run.rebuilds,
        run.maintenance_bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "bytes written per maintenance op: {} KiB vs full rebuild {} KiB ({:.1}%)",
        per_op / 1024,
        rebuild_bytes / 1024,
        ratio * 100.0
    );
    println!(
        "recall@10: lifecycle {lifecycle_recall:.3} vs fresh rebuild {rebuilt_recall:.3} \
         (gap {:+.4})",
        rebuilt_recall - lifecycle_recall
    );
    assert_eq!(
        run.rebuilds, 0,
        "lifecycle churn must complete without a full rebuild"
    );
    assert!(
        lifecycle_recall >= rebuilt_recall - 0.02,
        "lifecycle recall must stay within 2% of a fresh rebuild"
    );
    assert!(
        ratio <= 0.10,
        "per-maintenance-op I/O must be <= 10% of a full rebuild ({ratio:.3})"
    );
}

fn main() {
    let mut spec = internal_a(micronn_bench::bench_scale().max(0.05));
    let cap: usize = std::env::var("MICRONN_BENCH_MAX_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    spec.n_vectors = spec.n_vectors.min(cap);
    spec.n_queries = QUERY_BATCH;
    let dataset = generate(&spec);
    println!(
        "Figure 10: full vs incremental rebuild on InternalA ({} x {}d), {} epochs of +3%\n",
        dataset.len(),
        spec.dim,
        EPOCHS
    );

    let full = run_strategy(&dataset, false);
    let incr = run_strategy(&dataset, true);

    let widths = [6usize, 10, 10, 9, 9, 11, 11, 12, 12];
    micronn_bench::print_header(
        &[
            "epoch",
            "lat full",
            "lat incr",
            "rec full",
            "rec incr",
            "build full",
            "build incr",
            "rows full",
            "rows incr",
        ],
        &widths,
    );
    let mut total_full_rows = 0u64;
    let mut total_incr_rows = 0u64;
    for (e, (f, i)) in full.iter().zip(&incr).enumerate() {
        micronn_bench::print_row(
            &[
                e.to_string(),
                format!("{:.2}", f.latency_ms),
                format!("{:.2}", i.latency_ms),
                format!("{:.3}", f.recall),
                format!("{:.3}", i.recall),
                format!("{:.2}s", f.rebuild_s),
                format!("{:.2}s", i.rebuild_s),
                f.row_changes.to_string(),
                i.row_changes.to_string(),
            ],
            &widths,
        );
        total_full_rows += f.row_changes;
        total_incr_rows += i.row_changes;
    }
    let io_fraction = total_incr_rows as f64 / total_full_rows.max(1) as f64;
    // Exclude the growth-triggered full rebuild epochs (row changes an
    // order of magnitude above a flush) to isolate the flush footprint.
    let flush_median = {
        let mut v: Vec<u64> = incr.iter().map(|r| r.row_changes).collect();
        v.sort_unstable();
        v[v.len() / 2]
    };
    let (mut flush_rows, mut flush_full_rows) = (0u64, 0u64);
    for (f, i) in full.iter().zip(&incr) {
        if i.row_changes <= flush_median * 5 {
            flush_rows += i.row_changes;
            flush_full_rows += f.row_changes;
        }
    }
    let flush_fraction = flush_rows as f64 / flush_full_rows.max(1) as f64;
    let mean_gap: f64 = full
        .iter()
        .zip(&incr)
        .map(|(f, i)| f.recall - i.recall)
        .sum::<f64>()
        / full.len() as f64;
    println!(
        "\nincremental I/O footprint: {:.1}% of full rebuild rows overall; {:.1}% for flush-only epochs (paper: <2%)",
        io_fraction * 100.0,
        flush_fraction * 100.0
    );
    println!(
        "mean recall gap (full - incremental): {mean_gap:.4} (paper: small, corrected at rebuild)"
    );
    assert!(
        total_incr_rows < total_full_rows / 2,
        "incremental maintenance must touch far fewer rows"
    );
    assert!(
        mean_gap < 0.08,
        "incremental recall must stay close to full rebuild (gap {mean_gap})"
    );
    println!("expected shape (paper Fig.10): comparable latency/recall; tiny incremental I/O;");
    println!("incremental build cost spikes only at the growth-triggered full rebuild");

    lifecycle_churn_phase(&dataset);
}
