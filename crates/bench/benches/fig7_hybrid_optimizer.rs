//! Figure 7: effectiveness of the hybrid query optimizer (§4.3.1).
//!
//! Queries over a tagged corpus (Big-ANN Filtered Search stand-in) are
//! binned by true predicate selectivity decade; each bin runs under the
//! pre-filtering, post-filtering, and optimizer strategies, reporting
//! average latency (7a) and recall@100 (7b).
//!
//! Expected shape (paper): post-filtering an order of magnitude faster
//! but with collapsed recall on selective predicates; pre-filtering
//! 100% recall with latency growing with the qualifying count; the
//! optimizer tracking the better of the two on both axes.

use micronn::{
    AttributeDef, Config, DeviceProfile, Expr, MicroNN, PlanPreference, SearchRequest, VectorRecord,
};
use micronn_bench::mean_std;
use micronn_datasets::filtered_tags;

#[global_allocator]
static ALLOC: micronn_bench::TrackingAlloc = micronn_bench::TrackingAlloc;

const K: usize = 100;

fn main() {
    // The paper uses n=40 probes and an average partition size of 500
    // on 10M vectors; scaled down proportionally here.
    let n_assets: usize = std::env::var("MICRONN_BENCH_MAX_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30_000);
    let per_bin = 10; // the paper samples 10 queries per decade bin
    println!("Figure 7: hybrid optimizer on {n_assets} tagged vectors\n");
    let workload = filtered_tags(n_assets, 64, 400, per_bin, 6, 0xF17);

    let dir = tempfile::tempdir().unwrap();
    let mut cfg = Config::new(workload.dim, workload.metric);
    cfg.store = DeviceProfile::Large.store_options();
    cfg.target_partition_size = 100;
    // Paper setting scaled: n=40 probes over ~20k partitions of size
    // 500 becomes ~24 probes over ~300 partitions of size 100 here.
    cfg.default_probes = 24;
    cfg.attributes = vec![AttributeDef::full_text("tags")];
    let db = MicroNN::create(dir.path().join("tags.mnn"), cfg).unwrap();
    let records: Vec<VectorRecord> = workload
        .assets
        .iter()
        .map(|a| VectorRecord::new(a.asset_id, a.vector.clone()).with_attr("tags", a.tags.clone()))
        .collect();
    for chunk in records.chunks(2000) {
        db.upsert_batch(chunk).unwrap();
    }
    db.rebuild().unwrap();

    let widths = [12usize, 6, 11, 11, 11, 9, 9, 9, 12];
    micronn_bench::print_header(
        &[
            "selectivity",
            "qs",
            "pre ms",
            "post ms",
            "opt ms",
            "pre rec",
            "post rec",
            "opt rec",
            "plans chosen",
        ],
        &widths,
    );

    for (decade, bin) in workload.bins.iter().enumerate() {
        if bin.is_empty() {
            continue;
        }
        let mut lat = [Vec::new(), Vec::new(), Vec::new()];
        let mut rec = [Vec::new(), Vec::new(), Vec::new()];
        let mut pre_chosen = 0usize;
        for q in bin {
            let filter = q
                .tags
                .iter()
                .skip(1)
                .fold(Expr::matches("tags", q.tags[0].clone()), |acc, t| {
                    acc.and(Expr::matches("tags", t.clone()))
                });
            let truth = db.exact(&q.vector, K, Some(&filter)).unwrap();
            let truth_ids: std::collections::HashSet<i64> =
                truth.results.iter().map(|r| r.asset_id).collect();
            for (slot, plan) in [
                PlanPreference::ForcePreFilter,
                PlanPreference::ForcePostFilter,
                PlanPreference::Auto,
            ]
            .into_iter()
            .enumerate()
            {
                let (resp, d) = micronn_bench::time(|| {
                    db.search_with(
                        &SearchRequest::new(q.vector.clone(), K)
                            .with_filter(filter.clone())
                            .with_plan(plan),
                    )
                    .unwrap()
                });
                lat[slot].push(d.as_secs_f64() * 1e3);
                let r = if truth_ids.is_empty() {
                    1.0
                } else {
                    resp.results
                        .iter()
                        .filter(|h| truth_ids.contains(&h.asset_id))
                        .count() as f64
                        / truth_ids.len() as f64
                };
                rec[slot].push(r);
                if plan == PlanPreference::Auto && resp.info.plan == micronn::PlanUsed::PreFilter {
                    pre_chosen += 1;
                }
            }
        }
        let sel_label = format!("1e-{}", decade + 1);
        let (pre_ms, _) = mean_std(&lat[0]);
        let (post_ms, _) = mean_std(&lat[1]);
        let (opt_ms, _) = mean_std(&lat[2]);
        let (pre_r, _) = mean_std(&rec[0]);
        let (post_r, _) = mean_std(&rec[1]);
        let (opt_r, _) = mean_std(&rec[2]);
        micronn_bench::print_row(
            &[
                sel_label,
                bin.len().to_string(),
                format!("{pre_ms:.2}"),
                format!("{post_ms:.2}"),
                format!("{opt_ms:.2}"),
                format!("{pre_r:.2}"),
                format!("{post_r:.2}"),
                format!("{opt_r:.2}"),
                format!("{}pre/{}post", pre_chosen, bin.len() - pre_chosen),
            ],
            &widths,
        );
        // Invariants from the paper's analysis.
        assert!(
            (pre_r - 1.0).abs() < 1e-9,
            "pre-filtering must reach 100% recall"
        );
        assert!(
            opt_r >= post_r - 1e-9,
            "optimizer recall must not fall below post-filtering"
        );
    }
    println!("\nexpected shape (paper Fig.7): pre slower but recall 1.0; post fast but recall");
    println!("collapses at high selectivity; optimizer switches plans near F_IVF = n*t/|R|");
}
