//! Figure 4: mean ANN query latency at 90% recall@100 across all
//! datasets, for three scenarios (§4.2.1):
//!
//! * **InMemory** — fully memory-resident IVF baseline (latency lower
//!   bound);
//! * **MicroNN-WarmCache** — disk-resident MicroNN with a warmed page
//!   cache (the long-lived-application pattern);
//! * **MicroNN-ColdStart** — every query starts with purged caches (the
//!   application-bootstrap pattern).
//!
//! Each scenario runs under the Large and Small device profiles
//! (buffer-pool budget + worker count). MicroNN scenarios report
//! p50/p99 latency plus the buffer-pool hit rate over the measured
//! region, so the warm-vs-cold gap is attributable: warm queries
//! should run near-100% from the pool, cold queries mostly from disk.
//! Expected shape (paper): cold start an order of magnitude slower;
//! warm cache within small factors of InMemory.
//!
//! The MicroNN p50/p99 figures come from telemetry histogram snapshots
//! (`micronn_bench::hist_percentile_ms`), which asserts agreement with
//! the exact `percentile` of the raw samples to within one bucket
//! width on every row printed.

use micronn::{DeviceProfile, InMemoryIndex, SearchRequest};
use micronn_bench::{
    build_micronn, hist_percentile_ms, latency_histogram_ns, sample_ground_truth, scaled_specs,
    tune_probes,
};
use micronn_datasets::{generate, recall};

#[global_allocator]
static ALLOC: micronn_bench::TrackingAlloc = micronn_bench::TrackingAlloc;

const K: usize = 100;

fn main() {
    let specs = scaled_specs();
    let nq = micronn_bench::bench_queries();
    println!(
        "Figure 4: query latency (ms) for 90% recall@{K} — scale {}\n",
        micronn_bench::bench_scale()
    );
    for profile in [DeviceProfile::Large, DeviceProfile::Small] {
        println!("== {profile:?} DUT ==");
        let widths = [12usize, 7, 8, 10, 14, 14, 10, 10];
        micronn_bench::print_header(
            &[
                "dataset",
                "n",
                "probes",
                "InMemory",
                "Warm p50/p99",
                "Cold p50/p99",
                "hit% w/c",
                "recall",
            ],
            &widths,
        );
        for spec in &specs {
            let dataset = generate(spec);
            let gt = sample_ground_truth(&dataset, K, nq);

            // --- InMemory baseline (Lloyd quantizer, all in RAM) -----
            let ids: Vec<i64> = (0..dataset.len() as i64).collect();
            let mem = InMemoryIndex::build(
                ids,
                dataset.vectors.clone(),
                spec.dim,
                spec.metric,
                100,
                spec.seed,
            )
            .expect("inmemory build");
            // Tune probes for the baseline independently.
            let mut mem_probes = 1usize;
            loop {
                let mut r = 0.0;
                for (qi, truth) in gt.iter().enumerate() {
                    let got = mem.search(dataset.query(qi), K, mem_probes).unwrap();
                    let ids: Vec<i64> = got.iter().map(|x| x.asset_id).collect();
                    r += recall(&ids, truth);
                }
                r /= gt.len() as f64;
                if r >= 0.9 || mem_probes >= mem.partitions() {
                    break;
                }
                mem_probes = (mem_probes * 2).min(mem.partitions());
            }
            let mut mem_lat = Vec::new();
            for qi in 0..gt.len() {
                let (_, d) =
                    micronn_bench::time(|| mem.search(dataset.query(qi), K, mem_probes).unwrap());
                mem_lat.push(d.as_secs_f64() * 1e3);
            }

            // --- MicroNN disk-resident -------------------------------
            let bench = build_micronn(&dataset, profile, 100);
            let db = &bench.db;
            let (probes, achieved) = tune_probes(db, &dataset, &gt, K, nq, 0.9);

            // WarmCache: run the query set once to warm, then measure.
            for qi in 0..gt.len() {
                db.search_with(
                    &SearchRequest::new(dataset.query(qi).to_vec(), K).with_probes(probes),
                )
                .unwrap();
            }
            let mut warm_lat = Vec::new();
            let warm_io_start = db.io_stats();
            for qi in 0..gt.len() {
                let (_, d) = micronn_bench::time(|| {
                    db.search_with(
                        &SearchRequest::new(dataset.query(qi).to_vec(), K).with_probes(probes),
                    )
                    .unwrap()
                });
                warm_lat.push(d.as_secs_f64() * 1e3);
            }
            let warm_io = db.io_stats().since(&warm_io_start);

            // ColdStart: purge all caches before each query; the paper
            // samples fewer queries here (it measures one query per
            // cold start).
            db.checkpoint().ok();
            let mut cold_lat = Vec::new();
            let cold_io_start = db.io_stats();
            for qi in 0..gt.len().min(10) {
                db.purge_caches();
                let (_, d) = micronn_bench::time(|| {
                    db.search_with(
                        &SearchRequest::new(dataset.query(qi).to_vec(), K).with_probes(probes),
                    )
                    .unwrap()
                });
                cold_lat.push(d.as_secs_f64() * 1e3);
            }
            let cold_io = db.io_stats().since(&cold_io_start);

            // Report MicroNN latencies from telemetry histogram
            // snapshots; hist_percentile_ms() asserts each one agrees
            // with the exact percentile() within one bucket width.
            let warm_hist = latency_histogram_ns(&warm_lat);
            let cold_hist = latency_histogram_ns(&cold_lat);
            let m_mem = micronn_bench::median(&mem_lat);
            let m_warm = hist_percentile_ms(&warm_hist, &warm_lat, 50.0);
            let m_cold = hist_percentile_ms(&cold_hist, &cold_lat, 50.0);
            let p99_warm = hist_percentile_ms(&warm_hist, &warm_lat, 99.0);
            let p99_cold = hist_percentile_ms(&cold_hist, &cold_lat, 99.0);
            micronn_bench::print_row(
                &[
                    spec.name.to_string(),
                    dataset.len().to_string(),
                    probes.to_string(),
                    format!("{m_mem:.2}"),
                    format!("{m_warm:.2}/{p99_warm:.2}"),
                    format!("{m_cold:.2}/{p99_cold:.2}"),
                    format!(
                        "{:.0}/{:.0}",
                        warm_io.hit_ratio() * 100.0,
                        cold_io.hit_ratio() * 100.0
                    ),
                    format!("{achieved:.2}"),
                ],
                &widths,
            );
            assert!(
                m_cold >= m_warm * 0.8,
                "{}: cold start should not beat warm cache",
                spec.name
            );
        }
        println!();
    }
    println!("expected shape (paper): Cold >> Warm ≈ small-factor of InMemory");
}
