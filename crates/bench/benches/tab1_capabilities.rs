//! Table 1: capability matrix of vector indexing approaches.
//!
//! The table itself is literature-derived; MicroNN's own row is not
//! taken on faith — every claimed capability is *probed* against the
//! implementation before printing.

use micronn::{
    AttributeDef, Config, Expr, Metric, MicroNN, SearchRequest, SyncMode, ValueType, VectorRecord,
};

fn check(name: &str, ok: bool) -> &'static str {
    assert!(ok, "capability probe failed: {name}");
    "yes"
}

fn main() {
    println!(
        "Table 1: capabilities of existing approaches (from the paper) vs this MicroNN build\n"
    );
    let rows = [
        ("LSH", "PLSH [39]", "no", "yes", "yes", "no", "no"),
        ("LSH", "PM-LSH [44]", "no", "yes", "yes", "no", "no"),
        ("LSH", "HD-Index [2]", "yes", "yes", "yes", "no", "no"),
        ("Tree", "kd-tree [8]", "no", "yes", "yes", "no", "no"),
        ("Tree", "Annoy [5]", "yes", "yes", "yes", "no", "no"),
        ("Graph", "HNSWlib [24]", "no", "no", "n/a", "no", "no"),
        ("Graph", "DiskANN [17,38]", "no", "yes", "no", "yes", "no"),
        ("Graph", "ACORN [31]", "no", "no", "n/a", "yes", "no"),
        ("Part.", "FAISS-IVF [18]", "no", "no", "n/a", "yes", "yes"),
        ("Part.", "Milvus [41]", "no", "yes", "yes", "yes", "no"),
        ("Part.", "SPANN [6]", "yes", "no", "n/a", "no", "no"),
        ("Part.", "SPFresh [43]", "yes", "yes", "yes", "no", "no"),
    ];
    let widths = [6usize, 16, 12, 12, 12, 8, 8];
    micronn_bench::print_header(
        &[
            "type",
            "name",
            "constr.mem",
            "updatable",
            "consistent",
            "hybrid",
            "batch",
        ],
        &widths,
    );
    for (ty, name, cm, up, co, hy, ba) in rows {
        micronn_bench::print_row(&[ty, name, cm, up, co, hy, ba].map(str::to_string), &widths);
    }

    // --- Probe MicroNN's row against the real implementation ----------
    let dir = tempfile::tempdir().unwrap();
    let mut cfg = Config::new(8, Metric::L2);
    cfg.store.sync = SyncMode::Off;
    cfg.store.pool_bytes = 256 * 1024; // deliberately tiny cache
    cfg.target_partition_size = 32;
    cfg.attributes = vec![AttributeDef::indexed("tag", ValueType::Text)];
    let db = MicroNN::create(dir.path().join("probe.mnn"), cfg).unwrap();
    for i in 0..3000i64 {
        db.upsert(
            VectorRecord::new(i, vec![(i % 50) as f32; 8])
                .with_attr("tag", if i % 2 == 0 { "even" } else { "odd" }),
        )
        .unwrap();
    }
    db.rebuild().unwrap();

    // Constrained memory: index on disk far larger than the page cache.
    let index_bytes = db.database().store().page_count() as usize * 4096;
    let resident = db.stats().unwrap().resident_bytes;
    let constrained = check(
        "constrained memory",
        resident <= 256 * 1024 + 64 * 1024 && index_bytes > 2 * resident,
    );

    // Updatability without a rebuild.
    db.upsert(VectorRecord::new(100_000, vec![123.0; 8]))
        .unwrap();
    let hit = db.search(&[123.0; 8], 1).unwrap();
    let updatable = check("updatable", hit.results[0].asset_id == 100_000);

    // Consistency: a reader mid-stream ignores later writes (probed at
    // the storage level through stable repeated searches; the storage
    // crate's tests verify snapshot isolation directly).
    let consistent = check("consistent", {
        let before = db.search(&[123.0; 8], 3).unwrap();
        db.upsert(VectorRecord::new(100_001, vec![123.0; 8]))
            .unwrap();
        let after = db.search(&[123.0; 8], 3).unwrap();
        before.results.len() <= after.results.len()
    });

    // Hybrid queries.
    let hybrid = check("hybrid", {
        let r = db
            .search_with(&SearchRequest::new(vec![4.0; 8], 5).with_filter(Expr::eq("tag", "even")))
            .unwrap();
        !r.results.is_empty() && r.results.iter().all(|h| h.asset_id % 2 == 0)
    });

    // Batch interface.
    let batch = check("batch", {
        let qs: Vec<Vec<f32>> = (0..16).map(|i| vec![i as f32; 8]).collect();
        db.batch_search(&qs, 5, None).unwrap().results.len() == 16
    });

    micronn_bench::print_row(
        &[
            "Part.".into(),
            "MicroNN (this)".into(),
            constrained.into(),
            updatable.into(),
            consistent.into(),
            hybrid.into(),
            batch.into(),
        ],
        &widths,
    );
    println!("\nall five MicroNN capabilities verified by live probes");
}
