//! Figure 8: impact of the mini-batch size on clustering quality (8a:
//! recall of top-100 search) and on memory during index construction
//! (8b), on the InternalA workload (§4.3.2).
//!
//! Protocol follows the paper: the probe count `n` is tuned to reach
//! 90% recall on the index trained with the *smallest* batch size and
//! held fixed across all batch sizes, so every configuration performs
//! roughly the same number of distance computations.
//!
//! Expected shape: recall flat from 0.04% of the collection all the way
//! to 100% (≈ full k-means), while construction memory grows with the
//! batch size.

use micronn::{Config, DeviceProfile, MicroNN, RebuildOptions};
use micronn_bench::{ingest, mean_recall_at, mib, sample_ground_truth, tune_probes, TrackingAlloc};
use micronn_datasets::{generate, internal_a};

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

const K: usize = 100;

fn main() {
    // InternalA stand-in, sized per the bench cap.
    let mut spec = internal_a(micronn_bench::bench_scale().max(0.05));
    let cap: usize = std::env::var("MICRONN_BENCH_MAX_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    spec.n_vectors = spec.n_vectors.min(cap);
    spec.n_queries = micronn_bench::bench_queries();
    let dataset = generate(&spec);
    let n = dataset.len();
    println!(
        "Figure 8: mini-batch size sweep on InternalA ({n} x {}d, cosine)\n",
        spec.dim
    );

    let gt = sample_ground_truth(&dataset, K, spec.n_queries);

    // One database, re-clustered under each batch size.
    let dir = tempfile::tempdir().unwrap();
    let mut cfg = Config::new(spec.dim, spec.metric);
    // Small profile: a 4 MiB pool + 2 MiB spill keep the fixed
    // overheads low enough that the mini-batch buffer dominates the
    // memory axis, as in the paper's Figure 8b.
    cfg.store = DeviceProfile::Small.store_options();
    cfg.target_partition_size = 100;
    let db = MicroNN::create(dir.path().join("fig8.mnn"), cfg).unwrap();
    ingest(&db, &dataset);

    // The paper's percentages of the training set.
    let percentages = [0.05f64, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 100.0];
    let mut fixed_probes = None;
    let widths = [10usize, 10, 10, 12, 14, 12];
    micronn_bench::print_header(
        &[
            "batch %",
            "batch",
            "probes",
            "recall@100",
            "peak MiB",
            "build s",
        ],
        &widths,
    );
    for &pct in &percentages {
        let batch = ((n as f64 * pct / 100.0) as usize).max(8);
        db.purge_caches();
        TrackingAlloc::reset_peak();
        let base = TrackingAlloc::live();
        let (report, dur) = micronn_bench::time(|| {
            db.rebuild_with(&RebuildOptions {
                batch_size: Some(batch),
                iterations: None,
                // 100% "resembles a regular k-means algorithm" (§4.3.2):
                // buffer everything and run Lloyd's.
                full_kmeans: pct >= 100.0,
            })
            .expect("rebuild")
        });
        let peak = TrackingAlloc::peak().saturating_sub(base);

        // Tune n on the smallest batch, then hold it fixed (§4.3.2).
        // Tuning to 95% leaves slack so per-configuration clustering
        // variance at a fixed n stays above the 90% line.
        let probes = match fixed_probes {
            Some(p) => p,
            None => {
                let (p, _) = tune_probes(&db, &dataset, &gt, K, gt.len(), 0.95);
                fixed_probes = Some(p);
                p
            }
        };
        let recall = mean_recall_at(&db, &dataset, &gt, K, gt.len(), probes);
        micronn_bench::print_row(
            &[
                format!("{pct}"),
                batch.to_string(),
                probes.to_string(),
                format!("{recall:.3}"),
                mib(peak),
                format!("{:.2}", dur.as_secs_f64()),
            ],
            &widths,
        );
        assert!(report.partitions > 0);
        assert!(
            recall >= 0.75,
            "recall must stay high across batch sizes, got {recall} at {pct}%"
        );
    }
    println!("\nexpected shape (paper Fig.8): recall flat across batch sizes;");
    println!("construction memory grows with the batch (100% ≈ regular k-means)");
}
