//! Figure 6: index construction time (a) and memory (b) — InMemory
//! (full Lloyd's k-means over buffered vectors) vs MicroNN (streaming
//! mini-batch k-means, §4.2.2).
//!
//! Expected shape (paper): construction *time* comparable (clustering
//! is compute-bound either way); construction *memory* 4–60× smaller
//! for MicroNN because vectors are never buffered.

use micronn::{DeviceProfile, InMemoryIndex};
use micronn_bench::{ingest, mib, scaled_specs, TrackingAlloc};
use micronn_datasets::generate;

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

fn main() {
    let specs = scaled_specs();
    println!(
        "Figure 6: index construction time and memory — scale {}\n",
        micronn_bench::bench_scale()
    );
    let widths = [12usize, 8, 12, 12, 14, 14, 8];
    micronn_bench::print_header(
        &[
            "dataset",
            "n",
            "mem t(s)",
            "micro t(s)",
            "mem peak MiB",
            "micro peak MiB",
            "ratio",
        ],
        &widths,
    );
    for spec in &specs {
        let dataset = generate(spec);

        // --- InMemory: buffers all vectors, full Lloyd's --------------
        TrackingAlloc::reset_peak();
        let base = TrackingAlloc::live();
        let (mem_index, mem_time) = micronn_bench::time(|| {
            let ids: Vec<i64> = (0..dataset.len() as i64).collect();
            InMemoryIndex::build(
                ids,
                dataset.vectors.clone(), // the buffering the paper calls out
                spec.dim,
                spec.metric,
                100,
                spec.seed,
            )
            .expect("build")
        });
        let mem_peak = TrackingAlloc::peak().saturating_sub(base);
        drop(mem_index);

        // --- MicroNN: ingest first (not timed as "construction" — the
        // paper measures building the IVF index from stored vectors),
        // then measure the rebuild.
        // On-device construction: the Small profile bounds both the
        // page cache (4 MiB) and the write-txn spill budget (2 MiB).
        let dir = tempfile::tempdir().unwrap();
        let mut cfg = micronn::Config::new(spec.dim, spec.metric);
        cfg.store = DeviceProfile::Small.store_options();
        cfg.target_partition_size = 100;
        let db = micronn::MicroNN::create(dir.path().join("b.mnn"), cfg).unwrap();
        ingest(&db, &dataset);
        db.purge_caches();
        TrackingAlloc::reset_peak();
        let base = TrackingAlloc::live();
        let (report, micro_time) = micronn_bench::time(|| db.rebuild().expect("rebuild"));
        let micro_peak = TrackingAlloc::peak().saturating_sub(base);

        let ratio = mem_peak as f64 / micro_peak.max(1) as f64;
        micronn_bench::print_row(
            &[
                spec.name.to_string(),
                dataset.len().to_string(),
                format!("{:.2}", mem_time.as_secs_f64()),
                format!("{:.2}", micro_time.as_secs_f64()),
                mib(mem_peak),
                mib(micro_peak),
                format!("{ratio:.1}x"),
            ],
            &widths,
        );
        assert!(report.partitions > 0);
        // InMemory construction must buffer all vectors; the streaming
        // build is bounded by its mini-batch + spill budgets. The
        // superiority claim kicks in once the raw data outgrows those
        // fixed buffers (always true at paper scale).
        let raw_bytes = dataset.vectors.len() * 4;
        // pool (4) + spill (2) + mini-batch & assignment buffers +
        // key/assignment metadata; independent of collection size.
        let fixed_budget = 16 * 1024 * 1024;
        assert!(
            micro_peak < fixed_budget,
            "{}: streaming build memory must stay bounded, got {}",
            spec.name,
            mib(micro_peak)
        );
        if raw_bytes > fixed_budget {
            assert!(
                micro_peak < mem_peak,
                "{}: streaming build must beat buffered build on memory",
                spec.name
            );
        }
    }
    println!("\nexpected shape (paper): similar build times; MicroNN 4-60x less construction");
    println!("memory — the gap grows with dataset size (FULL_SCALE=1 restores paper scale)");
}
