//! Criterion micro-benchmarks for the performance-critical primitives:
//! distance kernels, the batched GEMM, telemetry overhead on the scan
//! path, top-k heaps, key codec, B+tree operations, and WAL commit
//! throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use micronn_linalg::{
    backend, batch_distances, dot, l2_sq, scalar_kernels, set_block_code, sq4_block_bytes,
    sq4_train, Metric, Sq4Scorer, Sq8Params, Sq8Scorer, TopK, SQ4_BLOCK, SQ4_LEVELS,
};
use micronn_rel::{encode_key, Value};
use micronn_storage::{BTree, Store, StoreOptions, SyncMode};

fn pseudo_vec(seed: u64, dim: usize) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..dim)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

fn bench_distance_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("distance_kernels");
    for dim in [96usize, 128, 512, 960] {
        let a = pseudo_vec(1, dim);
        let b = pseudo_vec(2, dim);
        g.throughput(Throughput::Elements(dim as u64));
        g.bench_with_input(BenchmarkId::new("l2_sq", dim), &dim, |bch, _| {
            bch.iter(|| l2_sq(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("dot", dim), &dim, |bch, _| {
            bch.iter(|| dot(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
    }
    g.finish();
}

fn bench_batch_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_distances");
    let dim = 128;
    let rows: Vec<f32> = (0..256).flat_map(|i| pseudo_vec(100 + i, dim)).collect();
    for nq in [1usize, 8, 64] {
        let queries: Vec<f32> = (0..nq).flat_map(|i| pseudo_vec(i as u64, dim)).collect();
        let mut out = vec![0f32; nq * 256];
        g.throughput(Throughput::Elements((nq * 256) as u64));
        g.bench_with_input(BenchmarkId::new("q_x_256rows_128d", nq), &nq, |bch, _| {
            bch.iter(|| {
                batch_distances(
                    Metric::L2,
                    std::hint::black_box(&queries),
                    nq,
                    std::hint::black_box(&rows),
                    256,
                    dim,
                    &mut out,
                )
            })
        });
    }
    g.finish();
}

/// Chunked SQ8 scoring (`Sq8Scorer::score_chunk`, the scan frame's
/// batched kernel) against the row-at-a-time `score` loop it replaced,
/// on the same code block. Both fill one score per row.
fn bench_sq8_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("sq8_scan");
    let rows = 1024usize;
    for dim in [96usize, 128, 512] {
        let data: Vec<f32> = (0..rows)
            .flat_map(|i| pseudo_vec(7 + i as u64, dim))
            .collect();
        let params = Sq8Params::train(&data, dim);
        let mut block: Vec<u8> = Vec::with_capacity(rows * dim);
        for row in data.chunks_exact(dim) {
            params.encode_into(row, &mut block);
        }
        let query = pseudo_vec(999, dim);
        let scorer = Sq8Scorer::new(Metric::L2, &query, &params);
        let mut out = Vec::with_capacity(rows);
        g.throughput(Throughput::Elements(rows as u64));
        g.bench_with_input(BenchmarkId::new("row_at_a_time_1024", dim), &dim, |b, _| {
            b.iter(|| {
                out.clear();
                for row in std::hint::black_box(&block[..]).chunks_exact(dim) {
                    out.push(scorer.score(row));
                }
                out.len()
            })
        });
        g.bench_with_input(BenchmarkId::new("score_chunk_1024", dim), &dim, |b, _| {
            b.iter(|| {
                out.clear();
                scorer.score_chunk(std::hint::black_box(&block[..]), &mut out);
                out.len()
            })
        });
    }
    g.finish();
}

/// Runtime-dispatched SIMD kernels against the scalar reference on the
/// same inputs — the dispatched backend is in the group header, so a
/// report from any machine says what it measured. All pairs produce
/// bit-identical outputs (the dispatch contract); only the clock
/// differs.
fn bench_simd_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group(format!("simd_dispatch[{}]", backend()));
    let scalar = scalar_kernels();
    for dim in [128usize, 960] {
        let a = pseudo_vec(1, dim);
        let b = pseudo_vec(2, dim);
        g.throughput(Throughput::Elements(dim as u64));
        g.bench_with_input(BenchmarkId::new("l2_sq/dispatched", dim), &dim, |bch, _| {
            bch.iter(|| l2_sq(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("l2_sq/scalar", dim), &dim, |bch, _| {
            bch.iter(|| (scalar.l2_sq)(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
    }
    // The acceptance row: chunked SQ8 scoring at 128d, dispatched vs
    // scalar-pinned scorer over the same 1024-row code block.
    let (rows, dim) = (1024usize, 128usize);
    let data: Vec<f32> = (0..rows)
        .flat_map(|i| pseudo_vec(7 + i as u64, dim))
        .collect();
    let params = Sq8Params::train(&data, dim);
    let mut block: Vec<u8> = Vec::with_capacity(rows * dim);
    for row in data.chunks_exact(dim) {
        params.encode_into(row, &mut block);
    }
    let query = pseudo_vec(999, dim);
    let fast = Sq8Scorer::new(Metric::L2, &query, &params);
    let slow = Sq8Scorer::with_kernels(Metric::L2, &query, &params, scalar);
    let mut out = Vec::with_capacity(rows);
    g.throughput(Throughput::Elements(rows as u64));
    for (name, scorer) in [("dispatched", &fast), ("scalar", &slow)] {
        g.bench_with_input(BenchmarkId::new("sq8_chunk_1024", name), &name, |bch, _| {
            bch.iter(|| {
                out.clear();
                scorer.score_chunk(std::hint::black_box(&block[..]), &mut out);
                out.len()
            })
        });
    }
    g.finish();
}

/// Per-row scan cost of the three codecs on the same 1024 logical rows:
/// F32 GEMM-path distances, SQ8 chunked asymmetric scoring, and SQ4
/// fastscan block lookups. Throughput is rows/s, so the per-row ratios
/// read straight off the report.
fn bench_codec_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group(format!("codec_scan[{}]", backend()));
    let (rows, dim) = (1024usize, 128usize);
    let data: Vec<f32> = (0..rows)
        .flat_map(|i| pseudo_vec(7 + i as u64, dim))
        .collect();
    let query = pseudo_vec(999, dim);
    g.throughput(Throughput::Elements(rows as u64));

    let mut f32_out = vec![0f32; rows];
    g.bench_function("f32_rows_1024_128d", |bch| {
        bch.iter(|| {
            batch_distances(
                Metric::L2,
                std::hint::black_box(&query),
                1,
                std::hint::black_box(&data),
                rows,
                dim,
                &mut f32_out,
            )
        })
    });

    let sq8_params = Sq8Params::train(&data, dim);
    let mut sq8_block: Vec<u8> = Vec::with_capacity(rows * dim);
    for row in data.chunks_exact(dim) {
        sq8_params.encode_into(row, &mut sq8_block);
    }
    let sq8 = Sq8Scorer::new(Metric::L2, &query, &sq8_params);
    let mut sq8_out = Vec::with_capacity(rows);
    g.bench_function("sq8_rows_1024_128d", |bch| {
        bch.iter(|| {
            sq8_out.clear();
            sq8.score_chunk(std::hint::black_box(&sq8_block[..]), &mut sq8_out);
            sq8_out.len()
        })
    });

    let sq4_params = sq4_train(&data, dim);
    let enc = sq4_params.encoder(SQ4_LEVELS);
    let n_blocks = rows / SQ4_BLOCK;
    let mut sq4_blocks = vec![0u8; n_blocks * sq4_block_bytes(dim)];
    let mut codes = Vec::with_capacity(dim);
    for (i, row) in data.chunks_exact(dim).enumerate() {
        codes.clear();
        enc.encode_row(row, &mut codes);
        let block = &mut sq4_blocks
            [(i / SQ4_BLOCK) * sq4_block_bytes(dim)..(i / SQ4_BLOCK + 1) * sq4_block_bytes(dim)];
        for (d, &c) in codes.iter().enumerate() {
            set_block_code(block, d, i % SQ4_BLOCK, c);
        }
    }
    let sq4 = Sq4Scorer::new(Metric::L2, &query, &sq4_params);
    let mut sq4_out = [0f32; SQ4_BLOCK];
    g.bench_function("sq4_rows_1024_128d", |bch| {
        bch.iter(|| {
            let mut sum = 0f32;
            for block in std::hint::black_box(&sq4_blocks[..]).chunks_exact(sq4_block_bytes(dim)) {
                sq4.score_block(block, &mut sq4_out);
                sum += sq4_out[0];
            }
            sum
        })
    });
    g.finish();
}

/// Telemetry cost on the hottest path it touches: the SQ8 1024-row
/// chunk scan bare, with the per-scan registry counter bumps the
/// executor performs (vectors/bytes/distances), and with the full
/// per-query record (two clock reads + one histogram record). The
/// counter variant is the always-on per-scan cost and must stay within
/// ~2% of bare; the query-record variant amortizes over a whole query,
/// not a single chunk, so its gap here is an upper bound.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_overhead");
    let (rows, dim) = (1024usize, 128usize);
    let data: Vec<f32> = (0..rows)
        .flat_map(|i| pseudo_vec(7 + i as u64, dim))
        .collect();
    let params = Sq8Params::train(&data, dim);
    let mut block: Vec<u8> = Vec::with_capacity(rows * dim);
    for row in data.chunks_exact(dim) {
        params.encode_into(row, &mut block);
    }
    let query = pseudo_vec(999, dim);
    let scorer = Sq8Scorer::new(Metric::L2, &query, &params);
    let mut out = Vec::with_capacity(rows);
    g.throughput(Throughput::Elements(rows as u64));

    g.bench_function("sq8_chunk_1024_bare", |b| {
        b.iter(|| {
            out.clear();
            scorer.score_chunk(std::hint::black_box(&block[..]), &mut out);
            out.len()
        })
    });

    let reg = micronn_telemetry::Registry::new();
    let vectors = reg.counter("micronn_vectors_scanned_total");
    let bytes = reg.counter("micronn_bytes_scanned_total");
    let distances = reg.counter("micronn_distance_computations_total");
    g.bench_function("sq8_chunk_1024_with_counters", |b| {
        b.iter(|| {
            out.clear();
            scorer.score_chunk(std::hint::black_box(&block[..]), &mut out);
            vectors.add(out.len() as u64);
            bytes.add(block.len() as u64);
            distances.add(out.len() as u64);
            out.len()
        })
    });

    let latency = reg.histogram("micronn_query_latency_ns");
    g.bench_function("sq8_chunk_1024_with_query_record", |b| {
        b.iter(|| {
            let t0 = std::time::Instant::now();
            out.clear();
            scorer.score_chunk(std::hint::black_box(&block[..]), &mut out);
            vectors.add(out.len() as u64);
            bytes.add(block.len() as u64);
            distances.add(out.len() as u64);
            latency.record(t0.elapsed().as_nanos() as u64);
            out.len()
        })
    });
    g.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut g = c.benchmark_group("topk_heap");
    let dists: Vec<f32> = (0..100_000)
        .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % 1_000_000) as f32)
        .collect();
    for k in [10usize, 100] {
        g.throughput(Throughput::Elements(dists.len() as u64));
        g.bench_with_input(BenchmarkId::new("push_100k", k), &k, |bch, &k| {
            bch.iter(|| {
                let mut t = TopK::new(k);
                for (i, &d) in dists.iter().enumerate() {
                    t.push(i as u64, d);
                }
                t.into_sorted().len()
            })
        });
    }
    g.finish();
}

fn bench_key_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("key_codec");
    let tuple = [Value::Integer(42), Value::Integer(1_000_000)];
    g.bench_function("encode_partition_vid", |b| {
        b.iter(|| encode_key(std::hint::black_box(&tuple)))
    });
    let text = [Value::text("tag0042"), Value::Integer(99)];
    g.bench_function("encode_text_pk", |b| {
        b.iter(|| encode_key(std::hint::black_box(&text)))
    });
    g.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    g.sample_size(20);
    let dir = tempfile::tempdir().unwrap();
    let store = Store::create(
        dir.path().join("bench.db"),
        StoreOptions {
            sync: SyncMode::Off,
            ..Default::default()
        },
    )
    .unwrap();
    let mut txn = store.begin_write().unwrap();
    let tree = BTree::create(&mut txn).unwrap();
    let blob = vec![7u8; 512]; // a 128-d f32 vector
    for i in 0..20_000u64 {
        tree.insert(&mut txn, &i.to_be_bytes(), &blob).unwrap();
    }
    txn.commit().unwrap();

    g.bench_function("point_get_20k", |b| {
        let r = store.begin_read();
        let mut i = 0u64;
        b.iter(|| {
            i = (i.wrapping_mul(6364136223846793005).wrapping_add(1)) % 20_000;
            tree.get(&r, &i.to_be_bytes()).unwrap().unwrap().len()
        })
    });
    g.bench_function("scan_1k_range", |b| {
        let r = store.begin_read();
        b.iter(|| {
            tree.scan_range(&r, &5000u64.to_be_bytes(), &6000u64.to_be_bytes())
                .unwrap()
                .count()
        })
    });
    g.bench_function("insert_commit_100", |b| {
        let mut next = 1_000_000u64;
        b.iter(|| {
            let mut txn = store.begin_write().unwrap();
            for _ in 0..100 {
                tree.insert(&mut txn, &next.to_be_bytes(), &blob).unwrap();
                next += 1;
            }
            txn.commit().unwrap();
        })
    });
    g.finish();
}

fn bench_wal_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal");
    g.sample_size(20);
    let dir = tempfile::tempdir().unwrap();
    let store = Store::create(
        dir.path().join("wal.db"),
        StoreOptions {
            sync: SyncMode::Off,
            checkpoint_after_frames: 0, // keep the WAL growing
            ..Default::default()
        },
    )
    .unwrap();
    g.bench_function("commit_8_dirty_pages", |b| {
        b.iter(|| {
            let mut txn = store.begin_write().unwrap();
            for _ in 0..8 {
                let p = txn.allocate_page().unwrap();
                txn.page_mut(p).unwrap()[100] = 1;
            }
            txn.commit().unwrap();
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_distance_kernels,
    bench_batch_gemm,
    bench_sq8_scan,
    bench_simd_dispatch,
    bench_codec_scan,
    bench_telemetry_overhead,
    bench_topk,
    bench_key_codec,
    bench_btree,
    bench_wal_commit
);
criterion_main!(benches);
