//! Ablations of MicroNN design choices (DESIGN.md §4):
//!
//! 1. **Balance constraint** (Algorithm 1's size penalty): partition
//!    size variance and recall with λ = 0 vs λ > 0.
//! 2. **Clustered layout**: pages read for a contiguous partition scan
//!    vs fetching the same rows by scattered point lookups — the reason
//!    the vector table is clustered on `(partition, vid)`.
//! 3. **Delta-store growth**: query latency as the unflushed delta
//!    grows — the motivation for incremental maintenance.
//! 4. **Per-thread heaps + merge** vs a single shared heap under a
//!    mutex (Algorithm 2's design).

use std::sync::atomic::Ordering;

use micronn::{Config, DeviceProfile, MicroNN, SearchRequest, VectorRecord};
use micronn_bench::{build_micronn, ingest, sample_ground_truth, tune_probes};
use micronn_cluster::{assign_all, size_cv, train, MiniBatchConfig, SliceSource};
use micronn_datasets::{generate, internal_a};
use micronn_linalg::{merge_all, TopK};

#[global_allocator]
static ALLOC: micronn_bench::TrackingAlloc = micronn_bench::TrackingAlloc;

fn main() {
    let mut spec = internal_a(micronn_bench::bench_scale().max(0.04));
    spec.n_vectors = spec.n_vectors.min(8_000);
    spec.n_queries = 20;
    spec.dim = 128; // keep the ablation fast; dim is not the variable
    let dataset = generate(&spec);

    // ------------------------------------------------------------------
    println!("Ablation 1: balance constraint (λ) vs partition-size variance\n");
    let widths = [8usize, 12, 12];
    micronn_bench::print_header(&["lambda", "size CV", "recall@100"], &widths);
    let gt = sample_ground_truth(&dataset, 100, 20);
    for lambda in [0.0f32, 0.5, 1.0] {
        let src = SliceSource::new(&dataset.vectors, spec.dim);
        let cfg = MiniBatchConfig {
            target_cluster_size: 100,
            batch_size: 1024,
            balance_lambda: lambda,
            balanced_assignment: lambda > 0.0,
            metric: spec.metric,
            ..Default::default()
        };
        let clustering = train(&src, &cfg).unwrap();
        let assignments = assign_all(&src, &clustering, lambda, 4096).unwrap();
        let cv = size_cv(&assignments, clustering.k());
        // Recall with a fixed probe budget over this partitioning.
        let mut partitions: Vec<Vec<u32>> = vec![Vec::new(); clustering.k()];
        for (i, &a) in assignments.iter().enumerate() {
            partitions[a as usize].push(i as u32);
        }
        let probes = 8.min(clustering.k());
        let mut total_recall = 0.0;
        for (qi, truth) in gt.iter().enumerate() {
            let q = dataset.query(qi);
            let mut top = TopK::new(100);
            for (ci, _) in clustering.nearest_n(q, probes) {
                for &m in &partitions[ci] {
                    let m = m as usize;
                    let row = &dataset.vectors[m * spec.dim..(m + 1) * spec.dim];
                    top.push(m as u64, spec.metric.distance(q, row));
                }
            }
            let ids: Vec<i64> = top.into_sorted().iter().map(|n| n.id as i64).collect();
            total_recall += micronn_datasets::recall(&ids, truth);
        }
        micronn_bench::print_row(
            &[
                format!("{lambda}"),
                format!("{cv:.3}"),
                format!("{:.3}", total_recall / gt.len() as f64),
            ],
            &widths,
        );
    }
    println!("-> the penalty trades a little recall for much lower size variance\n");

    // ------------------------------------------------------------------
    println!("Ablation 2: clustered partition scan vs scattered point lookups\n");
    let bench = build_micronn(&dataset, DeviceProfile::Small, 100);
    let db = &bench.db;
    db.checkpoint().unwrap();
    // Contiguous scan of the probe partitions:
    db.purge_caches();
    let before = db.stats().unwrap().store;
    let q = dataset.query(0).to_vec();
    let resp = db
        .search_with(&SearchRequest::new(q.clone(), 100).with_probes(8))
        .unwrap();
    let scan_reads = db.stats().unwrap().store.since(&before).disk_reads();
    let rows = resp.info.vectors_scanned;
    // Scattered: fetch the same number of random vectors by asset id.
    db.purge_caches();
    let before = db.stats().unwrap().store;
    let mut fetched = 0usize;
    let mut i = 0usize;
    while fetched < rows {
        if db.get_vector((i % dataset.len()) as i64).unwrap().is_some() {
            fetched += 1;
        }
        i = i.wrapping_add(2_654_435_761); // pseudo-random walk
    }
    let scattered_reads = db.stats().unwrap().store.since(&before).disk_reads();
    println!("  rows fetched:           {rows}");
    println!("  clustered scan reads:   {scan_reads} pages");
    println!("  scattered lookup reads: {scattered_reads} pages");
    println!(
        "-> clustering cuts page reads by {:.1}x\n",
        scattered_reads as f64 / scan_reads.max(1) as f64
    );
    assert!(scattered_reads > scan_reads, "clustered layout must win");

    // ------------------------------------------------------------------
    println!("Ablation 3: delta-store growth vs query latency\n");
    let dir = tempfile::tempdir().unwrap();
    let mut cfg = Config::new(spec.dim, spec.metric);
    cfg.store = DeviceProfile::Large.store_options();
    cfg.target_partition_size = 100;
    let db = MicroNN::create(dir.path().join("delta.mnn"), cfg).unwrap();
    ingest(&db, &dataset);
    db.rebuild().unwrap();
    let (probes, _) = {
        let gt = sample_ground_truth(&dataset, 100, 10);
        tune_probes(&db, &dataset, &gt, 100, 10, 0.9)
    };
    let widths = [12usize, 12, 14];
    micronn_bench::print_header(&["delta size", "latency ms", "vectors scanned"], &widths);
    let mut next_id = 1_000_000i64;
    for target_delta in [0usize, 500, 2000, 8000] {
        while (db.delta_len().unwrap() as usize) < target_delta {
            let i = (next_id as usize * 13) % dataset.len();
            db.upsert(VectorRecord::new(next_id, dataset.vector(i).to_vec()))
                .unwrap();
            next_id += 1;
        }
        // Warm, then measure.
        let q = dataset.query(1).to_vec();
        db.search_with(&SearchRequest::new(q.clone(), 100).with_probes(probes))
            .unwrap();
        let mut lat = Vec::new();
        let mut scanned = 0usize;
        for _ in 0..5 {
            let (r, d) = micronn_bench::time(|| {
                db.search_with(&SearchRequest::new(q.clone(), 100).with_probes(probes))
                    .unwrap()
            });
            lat.push(d.as_secs_f64() * 1e3);
            scanned = r.info.vectors_scanned;
        }
        let (m, _) = micronn_bench::mean_std(&lat);
        micronn_bench::print_row(
            &[
                target_delta.to_string(),
                format!("{m:.2}"),
                scanned.to_string(),
            ],
            &widths,
        );
    }
    println!("-> every query scans the whole delta: latency grows until a flush\n");

    // ------------------------------------------------------------------
    println!("Ablation 4: per-thread heaps + merge vs one shared locked heap\n");
    let n_items = 2_000_000usize;
    let k = 100;
    let threads = 4;
    let items: Vec<f32> = (0..n_items)
        .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % 1_000_000) as f32)
        .collect();
    // Per-thread heaps (Algorithm 2's design).
    let (merged, per_thread_time) = micronn_bench::time(|| {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let heaps: Vec<TopK> = std::thread::scope(|s| {
            (0..threads)
                .map(|_| {
                    let next = &next;
                    let items = &items;
                    s.spawn(move || {
                        let mut top = TopK::new(k);
                        loop {
                            let chunk = next.fetch_add(65536, Ordering::Relaxed);
                            if chunk >= items.len() {
                                return top;
                            }
                            for (j, &d) in items[chunk..(chunk + 65536).min(items.len())]
                                .iter()
                                .enumerate()
                            {
                                top.push((chunk + j) as u64, d);
                            }
                        }
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        merge_all(heaps, k)
    });
    // Single shared heap under a mutex.
    let (shared, shared_time) = micronn_bench::time(|| {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let heap = parking_lot::Mutex::new(TopK::new(k));
        std::thread::scope(|s| {
            for _ in 0..threads {
                let next = &next;
                let items = &items;
                let heap = &heap;
                s.spawn(move || loop {
                    let chunk = next.fetch_add(65536, Ordering::Relaxed);
                    if chunk >= items.len() {
                        return;
                    }
                    for (j, &d) in items[chunk..(chunk + 65536).min(items.len())]
                        .iter()
                        .enumerate()
                    {
                        heap.lock().push((chunk + j) as u64, d);
                    }
                });
            }
        });
        heap.into_inner().into_sorted()
    });
    assert_eq!(
        merged.iter().map(|n| n.id).collect::<Vec<_>>(),
        shared.iter().map(|n| n.id).collect::<Vec<_>>(),
        "both strategies find the same top-k"
    );
    println!(
        "  per-thread heaps + merge: {:.1} ms",
        per_thread_time.as_secs_f64() * 1e3
    );
    println!(
        "  shared locked heap:       {:.1} ms",
        shared_time.as_secs_f64() * 1e3
    );
    println!(
        "-> contention-free per-thread heaps are {:.1}x faster",
        shared_time.as_secs_f64() / per_thread_time.as_secs_f64()
    );
}
