//! Table 2: datasets used in the evaluation.
//!
//! Prints the paper's dataset inventory next to the synthetic stand-ins
//! actually generated at the current bench scale (see DESIGN.md §3 for
//! the substitution rationale).

use micronn_datasets::table2_specs;

fn main() {
    let widths = [12usize, 10, 12, 10, 8, 14, 12];
    println!(
        "Table 2: evaluation datasets (paper scale vs generated at scale {}):\n",
        micronn_bench::bench_scale()
    );
    micronn_bench::print_header(
        &[
            "dataset",
            "dim",
            "paper rows",
            "queries",
            "metric",
            "bench rows",
            "bench qs",
        ],
        &widths,
    );
    let paper = table2_specs(1.0);
    let bench = micronn_bench::scaled_specs();
    for (p, b) in paper.iter().zip(&bench) {
        micronn_bench::print_row(
            &[
                p.name.to_string(),
                p.dim.to_string(),
                p.n_vectors.to_string(),
                p.n_queries.to_string(),
                p.metric.to_string(),
                b.n_vectors.to_string(),
                b.n_queries.to_string(),
            ],
            &widths,
        );
    }
    // Sanity: the generator actually produces the advertised shapes.
    let probe = micronn_datasets::generate(&bench[0]);
    assert_eq!(probe.vectors.len(), bench[0].n_vectors * bench[0].dim);
    assert_eq!(probe.queries.len(), bench[0].n_queries * bench[0].dim);
    println!(
        "\ngenerator verified: {} produced {} x {}-d vectors",
        bench[0].name, bench[0].n_vectors, bench[0].dim
    );
}
