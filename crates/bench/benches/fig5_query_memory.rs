//! Figure 5: memory usage during query processing (§4.2.1).
//!
//! For each dataset: the InMemory baseline must hold every vector in
//! RAM, while MicroNN serves the same queries out of its bounded page
//! cache — "two orders of magnitude less" memory at paper scale. Peak
//! heap bytes are measured with the tracking allocator; MicroNN's
//! buffer-pool residency is reported alongside.
//!
//! A second table compares vector-payload bytes scanned per query
//! under the F32, SQ8, and SQ4 codecs: quantized scans read u8 codes
//! (or register-interleaved 4-bit blocks) plus a small exact re-rank
//! pool instead of full f32 rows, so the same probe budget touches
//! ≥ 3× fewer bytes under SQ8 and ≥ 6× fewer scan bytes under SQ4.

use micronn::{DeviceProfile, InMemoryIndex, SearchRequest, VectorCodec};
use micronn_bench::{
    build_micronn, build_micronn_codec, mib, sample_ground_truth, scaled_specs, tune_probes,
    TrackingAlloc,
};
use micronn_datasets::generate;

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

const K: usize = 100;

fn main() {
    let specs = scaled_specs();
    let nq = micronn_bench::bench_queries();
    println!(
        "Figure 5: peak memory (MiB) during query processing — scale {}\n",
        micronn_bench::bench_scale()
    );
    for profile in [DeviceProfile::Large, DeviceProfile::Small] {
        println!(
            "== {profile:?} DUT (pool budget {} MiB) ==",
            mib(profile.store_options().pool_bytes)
        );
        let widths = [12usize, 8, 14, 14, 12, 10];
        micronn_bench::print_header(
            &[
                "dataset",
                "n",
                "InMemory",
                "MicroNN",
                "pool resid.",
                "ratio",
            ],
            &widths,
        );
        for spec in &specs {
            let dataset = generate(spec);
            let gt = sample_ground_truth(&dataset, K, nq.min(15));

            // --- InMemory: query-phase peak includes the resident data.
            let mem_peak;
            {
                let ids: Vec<i64> = (0..dataset.len() as i64).collect();
                let mem = InMemoryIndex::build(
                    ids,
                    dataset.vectors.clone(),
                    spec.dim,
                    spec.metric,
                    100,
                    spec.seed,
                )
                .expect("build");
                TrackingAlloc::reset_peak();
                for qi in 0..gt.len() {
                    mem.search(dataset.query(qi), K, 8).unwrap();
                }
                // The index itself is live during queries: count it.
                mem_peak = TrackingAlloc::peak().max(mem.resident_bytes());
            }

            // --- MicroNN: build, then measure only the query phase.
            let bench = build_micronn(&dataset, profile, 100);
            let db = &bench.db;
            let (probes, _) = tune_probes(db, &dataset, &gt, K, gt.len(), 0.9);
            db.purge_caches(); // start the phase from a cold cache
            TrackingAlloc::reset_peak();
            let live_before = TrackingAlloc::live();
            for qi in 0..gt.len() {
                db.search_with(
                    &SearchRequest::new(dataset.query(qi).to_vec(), K).with_probes(probes),
                )
                .unwrap();
            }
            let micro_peak = TrackingAlloc::peak() - live_before.min(TrackingAlloc::peak());
            let pool = db.stats().unwrap().resident_bytes;

            let ratio = mem_peak as f64 / micro_peak.max(1) as f64;
            micronn_bench::print_row(
                &[
                    spec.name.to_string(),
                    dataset.len().to_string(),
                    mib(mem_peak),
                    mib(micro_peak),
                    mib(pool),
                    format!("{ratio:.1}x"),
                ],
                &widths,
            );
            // The figure's claim is about *scaling*: InMemory grows
            // with the dataset while MicroNN stays flat at the pool
            // budget. Flatness always holds; superiority only once the
            // raw data outgrows the cache (guaranteed at paper scale).
            let raw_bytes = dataset.vectors.len() * 4;
            let budget = profile.store_options().pool_bytes;
            assert!(
                pool <= budget + 64 * 1024,
                "{}: pool stays within budget",
                spec.name
            );
            assert!(
                mem_peak >= raw_bytes,
                "{}: InMemory must hold all vectors resident",
                spec.name
            );
            if raw_bytes > 2 * budget {
                assert!(
                    micro_peak < mem_peak,
                    "{}: MicroNN must use less query memory once data outgrows the cache",
                    spec.name
                );
            }
        }
        println!();
    }
    // --- Bytes scanned per query: F32 vs SQ8 vs SQ4 (same probes). ---
    // Measured at k = 10: the quantized pipelines read u8 codes (SQ8)
    // or 16·dim-byte interleaved blocks (SQ4) plus a fixed
    // `rerank_factor·k` exact pool, so the reduction approaches 4×
    // (SQ8) / 8× (SQ4, block-padding aside) as the scanned set grows
    // past the pool. Tiny smoke-scale datasets can sit below that
    // regime; the assertions apply once a query scans meaningfully
    // more rows than it re-ranks.
    println!("== bytes scanned per query: F32 vs SQ8 vs SQ4 codec (k=10) ==");
    const K_BYTES: usize = 10;
    let widths = [12usize, 8, 12, 12, 12, 12, 7, 7];
    micronn_bench::print_header(
        &[
            "dataset",
            "n",
            "F32 KiB/q",
            "SQ8 KiB/q",
            "SQ4 KiB/q",
            "reranked/q",
            "sq8",
            "sq4",
        ],
        &widths,
    );
    for spec in &specs {
        let dataset = generate(spec);
        let gt = sample_ground_truth(&dataset, K_BYTES, nq.min(10));
        let f32_db = build_micronn(&dataset, DeviceProfile::Large, 100);
        let sq8_db = build_micronn_codec(&dataset, DeviceProfile::Large, 100, VectorCodec::Sq8);
        let sq4_db = build_micronn_codec(&dataset, DeviceProfile::Large, 100, VectorCodec::Sq4);
        let partitions = f32_db.db.stats().unwrap().partitions.max(1) as usize;
        let (tuned, _) = tune_probes(&f32_db.db, &dataset, &gt, K_BYTES, gt.len(), 0.9);
        // Probe enough rows that the scan, not the re-rank tail,
        // dominates the byte count (the paper-scale regime).
        let probes = tuned.max(16).min(partitions);
        let (mut f32_bytes, mut sq8_bytes, mut reranked, mut scanned) =
            (0usize, 0usize, 0usize, 0usize);
        let (mut sq4_bytes, mut reranked4, mut scanned4) = (0usize, 0usize, 0usize);
        for qi in 0..gt.len() {
            let req = SearchRequest::new(dataset.query(qi).to_vec(), K_BYTES).with_probes(probes);
            f32_bytes += f32_db.db.search_with(&req).unwrap().info.bytes_scanned;
            let got = sq8_db.db.search_with(&req).unwrap();
            sq8_bytes += got.info.bytes_scanned;
            reranked += got.info.reranked;
            scanned += got.info.vectors_scanned;
            let got4 = sq4_db.db.search_with(&req).unwrap();
            sq4_bytes += got4.info.bytes_scanned;
            reranked4 += got4.info.reranked;
            scanned4 += got4.info.vectors_scanned;
        }
        let ratio = f32_bytes as f64 / sq8_bytes.max(1) as f64;
        let ratio4 = f32_bytes as f64 / sq4_bytes.max(1) as f64;
        micronn_bench::print_row(
            &[
                spec.name.to_string(),
                dataset.len().to_string(),
                format!("{:.1}", f32_bytes as f64 / gt.len() as f64 / 1024.0),
                format!("{:.1}", sq8_bytes as f64 / gt.len() as f64 / 1024.0),
                format!("{:.1}", sq4_bytes as f64 / gt.len() as f64 / 1024.0),
                format!("{:.1}", reranked as f64 / gt.len() as f64),
                format!("{ratio:.1}x"),
                format!("{ratio4:.1}x"),
            ],
            &widths,
        );
        if scanned >= 12 * reranked.max(1) {
            assert!(
                ratio >= 3.0,
                "{}: SQ8 must scan >= 3x fewer payload bytes ({ratio:.2}x)",
                spec.name
            );
        }
        if scanned4 >= 12 * reranked4.max(1) {
            // The SQ4 acceptance bound is on the *scan* payload (the
            // nibble blocks themselves): the exact re-rank tail is a
            // fixed per-query cost shared by every quantized codec, so
            // it is subtracted before comparing against the 1/6 bound.
            let sq4_scan = sq4_bytes.saturating_sub(4 * spec.dim * reranked4);
            let scan_ratio4 = f32_bytes as f64 / sq4_scan.max(1) as f64;
            assert!(
                scan_ratio4 >= 6.0,
                "{}: SQ4 must scan >= 6x fewer payload bytes ({scan_ratio4:.2}x)",
                spec.name
            );
        }
    }
    println!();
    println!(
        "expected shape (paper): MicroNN flat at the pool budget; InMemory grows with the dataset"
    );
    println!("(the 'two orders of magnitude' gap appears at paper scale: rerun with FULL_SCALE=1)");
    println!("SQ8 codec: same probes, >= 3x fewer payload bytes scanned (codes + exact re-rank)");
    println!("SQ4 codec: same probes, >= 6x fewer scan bytes (nibble blocks + exact re-rank)");
}
