//! `micronn-bench`: the harness regenerating every table and figure of
//! the MicroNN paper's evaluation (§4).
//!
//! Each bench target under `benches/` reproduces one experiment and
//! prints the same rows/series the paper reports:
//!
//! | target                | paper artifact                               |
//! |-----------------------|----------------------------------------------|
//! | `tab1_capabilities`   | Table 1 (capability matrix + feature probes) |
//! | `tab2_datasets`       | Table 2 (dataset inventory)                  |
//! | `fig4_query_latency`  | Fig. 4 (latency @90% recall, 3 modes × 2 DUTs)|
//! | `fig5_query_memory`   | Fig. 5 (memory during query processing)      |
//! | `fig6_index_build`    | Fig. 6 (build time + memory, InMemory vs MicroNN) |
//! | `fig7_hybrid_optimizer` | Fig. 7 (latency/recall vs selectivity)     |
//! | `fig8_minibatch`      | Fig. 8 (mini-batch size vs recall/memory)    |
//! | `fig9_batch_mqo`      | Fig. 9 (batch scaling + amortized latency)   |
//! | `fig10_updates`       | Fig. 10 (full vs incremental rebuild)        |
//! | `ablations`           | design-choice ablations (DESIGN.md §4)       |
//! | `micro_kernels`       | criterion micro-benchmarks                   |
//!
//! Scale: `MICRONN_BENCH_SCALE` (fraction of the paper's row counts,
//! default 0.01) or `FULL_SCALE=1` for paper-scale datasets.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use micronn::{Config, DeviceProfile, MicroNN, SearchRequest, VectorCodec, VectorRecord};
use micronn_datasets::{ground_truth, recall, Dataset};

// ---------------------------------------------------------------------------
// Tracking allocator: the "memory usage" axis of Figures 5, 6b and 8b.
// ---------------------------------------------------------------------------

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A global allocator wrapper that tracks live and peak heap bytes —
/// the measurement device behind every memory figure. Install with:
///
/// ```no_run
/// #[global_allocator]
/// static ALLOC: micronn_bench::TrackingAlloc = micronn_bench::TrackingAlloc;
/// ```
pub struct TrackingAlloc;

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

impl TrackingAlloc {
    /// Currently live heap bytes.
    pub fn live() -> usize {
        LIVE.load(Ordering::Relaxed)
    }

    /// Peak live heap bytes since the last [`TrackingAlloc::reset_peak`].
    pub fn peak() -> usize {
        PEAK.load(Ordering::Relaxed)
    }

    /// Resets the peak to the current live size, so a measured region
    /// reports its own high-water mark.
    pub fn reset_peak() {
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Scale and environment
// ---------------------------------------------------------------------------

/// Dataset scale: fraction of the paper's row counts. Default `0.01`;
/// `FULL_SCALE=1` restores paper scale; `MICRONN_BENCH_SCALE=<f>` sets
/// an explicit fraction.
pub fn bench_scale() -> f64 {
    if std::env::var("FULL_SCALE")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        return 1.0;
    }
    std::env::var("MICRONN_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.01)
}

/// Number of evaluation queries per dataset (kept modest so the whole
/// harness completes in minutes at the default scale).
pub fn bench_queries() -> usize {
    std::env::var("MICRONN_BENCH_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30)
}

/// The Table 2 dataset specs at bench scale, with per-dataset row
/// counts additionally capped (`MICRONN_BENCH_MAX_N`, default 20,000)
/// so the heavy datasets (DEEPImage 10M, GIST 960-d) stay laptop-sized
/// unless `FULL_SCALE=1`.
pub fn scaled_specs() -> Vec<micronn_datasets::DatasetSpec> {
    let full = std::env::var("FULL_SCALE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let cap: usize = std::env::var("MICRONN_BENCH_MAX_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if full { usize::MAX } else { 20_000 });
    let nq = bench_queries();
    micronn_datasets::table2_specs(bench_scale())
        .into_iter()
        .map(|mut s| {
            s.n_vectors = s.n_vectors.min(cap);
            s.n_queries = s.n_queries.min(nq.max(10));
            s
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Database construction helpers
// ---------------------------------------------------------------------------

/// A MicroNN database ingested from a dataset, plus its temp dir (kept
/// alive for the measurement's duration).
pub struct BenchDb {
    pub db: MicroNN,
    pub dir: tempfile::TempDir,
}

/// Creates, ingests and builds a MicroNN index over `dataset` with the
/// given device profile. `target_partition_size` follows the paper's
/// default of 100 unless overridden.
pub fn build_micronn(
    dataset: &Dataset,
    profile: DeviceProfile,
    target_partition_size: usize,
) -> BenchDb {
    build_micronn_codec(dataset, profile, target_partition_size, VectorCodec::F32)
}

/// [`build_micronn`] with an explicit vector codec (the Figure 5
/// bytes-scanned comparison builds the same dataset under both
/// codecs).
pub fn build_micronn_codec(
    dataset: &Dataset,
    profile: DeviceProfile,
    target_partition_size: usize,
    codec: VectorCodec,
) -> BenchDb {
    let dir = tempfile::tempdir().expect("tempdir");
    let mut cfg = Config::new(dataset.spec.dim, dataset.spec.metric);
    cfg.store = profile.store_options();
    cfg.workers = profile.workers();
    cfg.target_partition_size = target_partition_size;
    cfg.codec = codec;
    let db = MicroNN::create(dir.path().join("bench.mnn"), cfg).expect("create");
    ingest(&db, dataset);
    db.rebuild().expect("rebuild");
    BenchDb { db, dir }
}

/// Ingests a dataset in chunked batches.
pub fn ingest(db: &MicroNN, dataset: &Dataset) {
    let mut batch = Vec::with_capacity(2000);
    for i in 0..dataset.len() {
        batch.push(VectorRecord::new(i as i64, dataset.vector(i).to_vec()));
        if batch.len() == 2000 {
            db.upsert_batch(&batch).expect("upsert");
            batch.clear();
        }
    }
    if !batch.is_empty() {
        db.upsert_batch(&batch).expect("upsert");
    }
}

/// Finds the smallest probe count reaching `target` mean recall@k over
/// the sample queries (the paper's "identify n ... to reach a recall of
/// 90% or higher", §4.1.3). Returns `(probes, achieved recall)`.
pub fn tune_probes(
    db: &MicroNN,
    dataset: &Dataset,
    gt: &[Vec<i64>],
    k: usize,
    n_queries: usize,
    target: f64,
) -> (usize, f64) {
    let max_probes = db.stats().expect("stats").partitions.max(1) as usize;
    let mut probes = 1usize;
    loop {
        let r = mean_recall_at(db, dataset, gt, k, n_queries, probes);
        if r >= target || probes >= max_probes {
            return (probes, r);
        }
        probes = (probes * 2).min(max_probes);
    }
}

/// Mean recall@k over the first `n_queries` dataset queries.
pub fn mean_recall_at(
    db: &MicroNN,
    dataset: &Dataset,
    gt: &[Vec<i64>],
    k: usize,
    n_queries: usize,
    probes: usize,
) -> f64 {
    let n = n_queries.min(dataset.spec.n_queries);
    let mut total = 0.0;
    for (qi, truth) in gt.iter().enumerate().take(n) {
        let got = db
            .search_with(&SearchRequest::new(dataset.query(qi).to_vec(), k).with_probes(probes))
            .expect("search");
        let ids: Vec<i64> = got.results.iter().map(|r| r.asset_id).collect();
        total += recall(&ids, truth);
    }
    total / n as f64
}

/// Computes ground truth for the first `n_queries` queries only.
pub fn sample_ground_truth(dataset: &Dataset, k: usize, n_queries: usize) -> Vec<Vec<i64>> {
    let mut slim = dataset.clone();
    slim.spec.n_queries = n_queries.min(dataset.spec.n_queries);
    slim.queries
        .truncate(slim.spec.n_queries * dataset.spec.dim);
    ground_truth(&slim, k, 4)
}

// ---------------------------------------------------------------------------
// Timing and reporting
// ---------------------------------------------------------------------------

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let v = f();
    (v, t.elapsed())
}

/// Median of a sample (robust to scheduler-induced outliers).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let mid = v.len() / 2;
    if v.len() % 2 == 0 {
        (v[mid - 1] + v[mid]) / 2.0
    } else {
        v[mid]
    }
}

/// Linear-interpolated percentile of a sample; `p` in `[0, 100]`.
/// `percentile(xs, 50.0)` matches [`median`] on odd-length samples and
/// interpolates identically on even ones.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let rank = (p / 100.0).clamp(0.0, 1.0) * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    v[lo] + (v[hi] - v[lo]) * frac
}

/// Records a millisecond latency sample into a telemetry histogram at
/// nanosecond resolution (the same unit the database's
/// `micronn_query_latency_ns` histogram uses) and returns its snapshot.
pub fn latency_histogram_ns(xs_ms: &[f64]) -> micronn_telemetry::HistogramSnapshot {
    let h = micronn_telemetry::Histogram::new();
    for &ms in xs_ms {
        h.record((ms * 1e6).round() as u64);
    }
    h.snapshot()
}

/// Histogram-estimated percentile in milliseconds, asserted to agree
/// with the exact [`percentile`] of the raw sample to within one width
/// of the bucket holding the upper order statistic — the error bound
/// `HistogramSnapshot::quantile` documents. Figure 4 reports its
/// p50/p99 through this, so the telemetry numbers are continuously
/// cross-checked against the hand-rolled math.
pub fn hist_percentile_ms(
    snap: &micronn_telemetry::HistogramSnapshot,
    xs_ms: &[f64],
    p: f64,
) -> f64 {
    if xs_ms.is_empty() {
        return 0.0;
    }
    let est_ns = snap.quantile(p / 100.0);
    let exact_ns = percentile(xs_ms, p) * 1e6;
    let mut v: Vec<u64> = xs_ms.iter().map(|&ms| (ms * 1e6).round() as u64).collect();
    v.sort_unstable();
    let hi = ((p / 100.0).clamp(0.0, 1.0) * (v.len() - 1) as f64).ceil() as usize;
    // +1ns absorbs the f64→ns rounding of the recorded samples.
    let tol_ns = micronn_telemetry::bucket_width(v[hi]) as f64 + 1.0;
    assert!(
        (est_ns - exact_ns).abs() <= tol_ns,
        "histogram p{p} = {est_ns:.0}ns vs exact {exact_ns:.0}ns \
         exceeds one bucket width ({tol_ns:.0}ns)"
    );
    est_ns / 1e6
}

/// Mean and standard deviation of a sample.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Prints a header + separator.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}

/// Formats bytes as MiB with one decimal.
pub fn mib(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a duration as milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_math() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn percentile_math() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), median(&xs));
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert!((percentile(&xs, 75.0) - 4.0).abs() < 1e-12);
        let even = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&even, 50.0), median(&even));
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn histogram_percentiles_match_exact_within_a_bucket() {
        // A skewed latency-shaped sample: mostly sub-ms with a heavy
        // tail, in ms. hist_percentile_ms() asserts the agreement
        // internally; this test just drives it across the quantiles
        // Figure 4 prints.
        let mut s = 0x243F6A8885A308D3u64;
        let xs: Vec<f64> = (0..500)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let u = (s >> 11) as f64 / (1u64 << 53) as f64;
                0.05 + 30.0 * u * u * u // 0.05ms..30ms, cubed tail
            })
            .collect();
        let snap = latency_histogram_ns(&xs);
        for p in [0.0, 50.0, 90.0, 99.0, 100.0] {
            let est = hist_percentile_ms(&snap, &xs, p);
            assert!(est > 0.0);
        }
        assert_eq!(hist_percentile_ms(&snap, &[], 50.0), 0.0);
    }

    #[test]
    fn scale_defaults() {
        let s = bench_scale();
        assert!(s > 0.0 && s <= 1.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(mib(1024 * 1024), "1.0");
        assert_eq!(ms(Duration::from_millis(12)), "12.00");
    }
}
