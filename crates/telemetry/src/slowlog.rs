//! Bounded ring buffer of slow-query records.
//!
//! Queries whose total latency crosses the configured threshold are
//! pushed here with their full stage breakdown, so "why was that one
//! search slow?" is answerable after the fact without re-running it
//! under a tracer. The buffer keeps the most recent `capacity`
//! entries and drops the oldest.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Duration;

/// One query that crossed the slow threshold, with its plan and
/// per-stage timings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQueryRecord {
    /// Plan that executed (`"ann"`, `"pre-filter"`, `"batch[32]"`, …).
    pub plan: String,
    /// Requested result count.
    pub k: usize,
    /// End-to-end latency.
    pub total: Duration,
    /// Per-stage durations in execution order.
    pub stages: Vec<(&'static str, Duration)>,
    /// Partitions scanned (including the delta store).
    pub partitions_scanned: usize,
    /// Vectors whose distance was computed.
    pub vectors_scanned: usize,
    /// Vectors rejected by the attribute filter.
    pub filtered_out: usize,
    /// Candidate set size of a pre-filtering plan.
    pub candidates: usize,
    /// Vector-payload bytes read.
    pub bytes_scanned: usize,
    /// Candidates re-ranked against exact vectors.
    pub reranked: usize,
}

/// Fixed-capacity, thread-safe ring buffer of [`SlowQueryRecord`]s.
#[derive(Debug)]
pub struct SlowQueryLog {
    capacity: usize,
    entries: Mutex<VecDeque<SlowQueryRecord>>,
}

impl SlowQueryLog {
    /// Creates a log keeping at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> SlowQueryLog {
        SlowQueryLog {
            capacity: capacity.max(1),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&self, record: SlowQueryRecord) {
        let mut e = self.entries.lock().unwrap();
        if e.len() == self.capacity {
            e.pop_front();
        }
        e.push_back(record);
    }

    /// Clones the current contents, oldest first.
    pub fn entries(&self) -> Vec<SlowQueryRecord> {
        self.entries.lock().unwrap().iter().cloned().collect()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all records.
    pub fn clear(&self) {
        self.entries.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(plan: &str, ms: u64) -> SlowQueryRecord {
        SlowQueryRecord {
            plan: plan.to_string(),
            k: 10,
            total: Duration::from_millis(ms),
            stages: vec![("partition_scan", Duration::from_millis(ms))],
            partitions_scanned: 1,
            vectors_scanned: 100,
            filtered_out: 0,
            candidates: 0,
            bytes_scanned: 400,
            reranked: 0,
        }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let log = SlowQueryLog::new(3);
        assert!(log.is_empty());
        for i in 0..5 {
            log.push(rec(&format!("q{i}"), i));
        }
        let e = log.entries();
        assert_eq!(log.len(), 3);
        assert_eq!(
            e.iter().map(|r| r.plan.as_str()).collect::<Vec<_>>(),
            ["q2", "q3", "q4"]
        );
        log.clear();
        assert!(log.is_empty());
    }
}
