//! Snapshot renderers: Prometheus text exposition format and JSON.
//!
//! Both are hand-rolled (the workspace carries no serialization
//! dependency) and operate on [`RegistrySnapshot`], so exporting never
//! blocks metric producers.

use crate::metrics::{MetricSnapshot, RegistrySnapshot};

/// Maps a registry name to a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (i > 0 && ch.is_ascii_digit());
        out.push(if ok { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl RegistrySnapshot {
    /// Renders the snapshot in Prometheus text exposition format.
    /// Histograms emit cumulative `_bucket{le="…"}` lines for each
    /// non-empty bucket (plus `+Inf`), then `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, metric) in &self.metrics {
            let name = prom_name(name);
            match metric {
                MetricSnapshot::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                MetricSnapshot::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                MetricSnapshot::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cum = 0u64;
                    for (upper, count) in h.nonzero_buckets() {
                        cum += count;
                        out.push_str(&format!("{name}_bucket{{le=\"{upper}\"}} {cum}\n"));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                    out.push_str(&format!("{name}_sum {}\n", h.sum));
                    out.push_str(&format!("{name}_count {}\n", h.count));
                }
            }
        }
        out
    }

    /// Renders the snapshot as a JSON object with `counters`,
    /// `gauges`, and `histograms` sections; histograms carry count,
    /// sum, max, mean, and the standard quantile estimates.
    pub fn to_json(&self) -> String {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for (name, metric) in &self.metrics {
            let key = json_escape(name);
            match metric {
                MetricSnapshot::Counter(v) => counters.push(format!("\"{key}\":{v}")),
                MetricSnapshot::Gauge(v) => gauges.push(format!("\"{key}\":{v}")),
                MetricSnapshot::Histogram(h) => hists.push(format!(
                    "\"{key}\":{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.3},\
                     \"p50\":{:.1},\"p90\":{:.1},\"p99\":{:.1},\"p999\":{:.1}}}",
                    h.count,
                    h.sum,
                    h.max,
                    h.mean(),
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.p999()
                )),
            }
        }
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            hists.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::metrics::Registry;

    #[test]
    fn prometheus_output_is_line_format_clean() {
        let r = Registry::new();
        r.counter("micronn_queries_total").add(3);
        r.gauge("micronn_resident_bytes").set(4096);
        let h = r.histogram("micronn_query_latency_ns");
        for v in [900u64, 1_000, 50_000, 2_000_000] {
            h.record(v);
        }
        let text = r.snapshot().to_prometheus();
        let mut bucket_lines = 0;
        for line in text.lines() {
            assert!(!line.is_empty());
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "bad comment: {line}");
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').expect("name value");
            assert!(value.parse::<f64>().is_ok(), "bad value in: {line}");
            let bare = name_part.split('{').next().unwrap();
            assert!(
                bare.chars()
                    .enumerate()
                    .all(|(i, c)| c.is_ascii_alphabetic()
                        || c == '_'
                        || c == ':'
                        || (i > 0 && c.is_ascii_digit())),
                "bad metric name in: {line}"
            );
            if name_part.contains("_bucket") {
                bucket_lines += 1;
            }
        }
        // 4 non-empty buckets + the +Inf line.
        assert_eq!(bucket_lines, 5);
        assert!(text.contains("micronn_queries_total 3"));
        assert!(text.contains("le=\"+Inf\"} 4"));
        assert!(text.contains("micronn_query_latency_ns_count 4"));
    }

    #[test]
    fn json_output_has_all_sections() {
        let r = Registry::new();
        r.counter("a_total").inc();
        r.gauge("b").set(-2);
        r.histogram("c_ns").record(128);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a_total\":1"));
        assert!(json.contains("\"b\":-2"));
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"p50\":"));
    }
}
