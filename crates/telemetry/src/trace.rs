//! Span-style tracing behind a zero-overhead-when-disabled mount
//! point.
//!
//! Instrumented code keeps an `Arc<SinkCell>` and guards every span
//! construction on [`SinkCell::enabled`] — a single relaxed atomic
//! load. With no sink installed (the default) the instrumented paths
//! execute no timing calls and allocate nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// One completed unit of traced work: a query stage, a WAL group
/// commit, a checkpoint, or a maintenance action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Stable span name, e.g. `"partition_scan"`, `"wal_group_commit"`,
    /// `"maintain_flush"`.
    pub name: &'static str,
    /// Wall-clock duration of the spanned region.
    pub duration: Duration,
    /// Bytes attributed to the span (payload scanned, pages written).
    pub bytes: u64,
    /// Item count attributed to the span (rows, pages, candidates).
    pub items: u64,
    /// fsync calls issued inside the span.
    pub fsyncs: u64,
    /// Free-form context (plan, partition id); empty when untraced.
    pub detail: String,
}

impl Span {
    /// A span with only a name and duration; counters start at zero.
    pub fn new(name: &'static str, duration: Duration) -> Span {
        Span {
            name,
            duration,
            bytes: 0,
            items: 0,
            fsyncs: 0,
            detail: String::new(),
        }
    }
}

/// Receiver for completed [`Span`]s. Implementations must be cheap
/// and non-blocking — spans are recorded from query and commit paths.
pub trait TraceSink: Send + Sync {
    /// Whether the sink wants spans at all; instrumented code checks
    /// this (through [`SinkCell::enabled`]) before timing anything.
    fn enabled(&self) -> bool {
        true
    }

    /// Receives one completed span.
    fn record(&self, span: &Span);
}

/// A sink that discards everything and reports itself disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _span: &Span) {}
}

/// A sink that buffers every span in memory — the test and
/// `micronnctl trace` workhorse.
#[derive(Debug, Default)]
pub struct CollectingSink {
    spans: Mutex<Vec<Span>>,
}

impl CollectingSink {
    /// Creates an empty collector.
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }

    /// Removes and returns everything collected so far.
    pub fn take(&self) -> Vec<Span> {
        std::mem::take(&mut self.spans.lock().unwrap())
    }

    /// Clones everything collected so far.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().unwrap().clone()
    }

    /// Number of spans collected so far.
    pub fn len(&self) -> usize {
        self.spans.lock().unwrap().len()
    }

    /// Whether nothing has been collected yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for CollectingSink {
    fn record(&self, span: &Span) {
        self.spans.lock().unwrap().push(span.clone());
    }
}

/// Shared mount point for an optional [`TraceSink`].
///
/// The cell is cloned (via `Arc`) into every component that emits
/// spans — the store options, the query executor, the maintenance
/// ladder — so installing one sink makes the whole stack visible.
/// The enabled flag is a dedicated atomic, so the disabled fast path
/// never touches the `RwLock`.
#[derive(Default)]
pub struct SinkCell {
    active: AtomicBool,
    sink: RwLock<Option<Arc<dyn TraceSink>>>,
}

impl SinkCell {
    /// Creates a cell with no sink installed (disabled).
    pub fn new() -> SinkCell {
        SinkCell::default()
    }

    /// Installs (or with `None`, removes) the sink.
    pub fn set(&self, sink: Option<Arc<dyn TraceSink>>) {
        let active = sink.as_ref().is_some_and(|s| s.enabled());
        *self.sink.write().unwrap() = sink;
        self.active.store(active, Ordering::Release);
    }

    /// Whether a live sink is installed. Instrumented code gates all
    /// timing and span construction on this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Forwards a span to the installed sink, if any.
    pub fn record(&self, span: Span) {
        if !self.enabled() {
            return;
        }
        if let Some(sink) = self.sink.read().unwrap().as_ref() {
            sink.record(&span);
        }
    }
}

impl std::fmt::Debug for SinkCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SinkCell")
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_is_disabled_until_a_live_sink_is_installed() {
        let cell = SinkCell::new();
        assert!(!cell.enabled());
        cell.record(Span::new("ignored", Duration::from_micros(1)));

        let sink = Arc::new(CollectingSink::new());
        cell.set(Some(sink.clone()));
        assert!(cell.enabled());
        cell.record(Span::new("kept", Duration::from_micros(2)));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.spans()[0].name, "kept");

        cell.set(Some(Arc::new(NullSink)));
        assert!(!cell.enabled(), "NullSink must not enable the cell");

        cell.set(None);
        assert!(!cell.enabled());
        assert_eq!(sink.take().len(), 1);
        assert!(sink.is_empty());
    }
}
