//! Unified telemetry for the MicroNN stack.
//!
//! The paper's entire evaluation (Figures 4–10) is built on latency,
//! I/O, and memory measurement. This crate replaces the repo's
//! patchwork of one-off atomics with one coherent layer:
//!
//! * **[`Registry`]** — a named collection of lock-free
//!   [`Counter`]s, [`Gauge`]s, and [`Histogram`]s. Handles are
//!   `Arc`-shared, so hot paths bump plain atomics; the registry lock
//!   is only taken at get-or-create and snapshot time.
//! * **[`Histogram`]** — fixed-bucket log-scale latency histogram
//!   (8 sub-buckets per octave, ≤ 12.5 % relative bucket width) with
//!   mergeable [`HistogramSnapshot`]s reporting p50/p90/p99/p999 and
//!   an exact max.
//! * **[`TraceSink`]** — span-style tracing behind a
//!   zero-overhead-when-disabled mount point ([`SinkCell`]): query
//!   stages, WAL group commits, checkpoints, and maintenance actions
//!   each record a [`Span`] with duration, bytes, and fsync counts.
//! * **[`SlowQueryLog`]** — a bounded ring buffer of
//!   [`SlowQueryRecord`]s capturing the full stage breakdown of
//!   queries over a configurable threshold.
//! * **Exporters** — [`RegistrySnapshot::to_prometheus`] (text
//!   exposition format) and [`RegistrySnapshot::to_json`].
//!
//! The crate is dependency-free (std only) so every layer of the
//! stack — storage, core, benches — can use it without cycles.

mod export;
mod metrics;
mod slowlog;
mod trace;

pub use metrics::{
    bucket_bounds, bucket_index, bucket_width, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricSnapshot, Registry, RegistrySnapshot, NUM_BUCKETS,
};
pub use slowlog::{SlowQueryLog, SlowQueryRecord};
pub use trace::{CollectingSink, NullSink, SinkCell, Span, TraceSink};
