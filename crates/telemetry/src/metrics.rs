//! Lock-free counters, gauges, log-scale histograms, and the registry
//! that names them.
//!
//! Histogram layout: values are bucketed on a base-2 logarithmic scale
//! with `2^3 = 8` sub-buckets per octave. For a value `v ≥ 8` with
//! most-significant bit `m`, the bucket index is
//! `(m - 3)·8 + (v >> (m - 3))`; values below 8 get exact unit
//! buckets. Bucket width is at most 12.5 % of the bucket's lower
//! bound, so any quantile estimate is off by less than one bucket
//! width from the exact order statistic. 496 buckets cover all of
//! `u64` — at nanosecond resolution that is `0 ns` through ~584 years.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sub-bucket resolution: `2^SUBBITS` buckets per power of two.
const SUBBITS: u32 = 3;

/// Total number of histogram buckets covering the full `u64` range.
pub const NUM_BUCKETS: usize = 496;

/// Returns the bucket index a value lands in; see the module docs for
/// the layout.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < (1 << SUBBITS) {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUBBITS;
        ((shift as usize) << SUBBITS) + (v >> shift) as usize
    }
}

/// Returns `(lower, upper)` bounds of bucket `i` (`lower` inclusive,
/// `upper` exclusive; the last bucket saturates at `u64::MAX`).
#[inline]
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    debug_assert!(i < NUM_BUCKETS);
    if i < (1 << SUBBITS) {
        (i as u64, i as u64 + 1)
    } else {
        let shift = (i >> SUBBITS) as u32 - 1;
        let lo = (((1 << SUBBITS) + (i & ((1 << SUBBITS) - 1))) as u64) << shift;
        (lo, lo.saturating_add(1u64 << shift))
    }
}

/// Width of the bucket containing `v` — the quantile error bound at
/// that magnitude.
#[inline]
pub fn bucket_width(v: u64) -> u64 {
    let (lo, hi) = bucket_bounds(bucket_index(v));
    hi - lo
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (e.g. resident bytes, live handles).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log-scale histogram; see the module docs for the
/// bucket layout. Recording is three relaxed atomic RMWs plus a
/// `fetch_max`, so it is safe on any hot path.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Takes a point-in-time snapshot (not atomic across buckets, but
    /// every recorded value is counted exactly once eventually).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// A point-in-time copy of a [`Histogram`]. Snapshots from different
/// shards merge losslessly: bucket counts add, so a merged snapshot
/// reports exactly the quantiles of the union of the inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all recorded values (wraps only after `u64` overflow).
    pub sum: u64,
    /// Largest recorded value, exact.
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (useful as a merge accumulator).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Adds `other`'s observations into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        // The recording side accumulates `sum` with a wrapping atomic
        // fetch_add; wrap here too so merged == union holds bit-exactly
        // even for pathological value ranges.
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Mean of all recorded values; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate of the `j`-th order statistic (0-indexed). The true
    /// value lies in the same bucket, so the error is below one bucket
    /// width.
    fn order_stat(&self, j: u64) -> f64 {
        debug_assert!(j < self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c > j {
                let (lo, hi) = bucket_bounds(i);
                let within = (j - cum) as f64 + 0.5;
                return lo as f64 + (hi - lo) as f64 * within / c as f64;
            }
            cum += c;
        }
        self.max as f64
    }

    /// Quantile estimate for `q ∈ [0, 1]`, using the same
    /// `rank = q·(n−1)` linear-interpolation convention as the bench
    /// harness's exact `percentile` helper, so the two agree to within
    /// one bucket width. Returns `0.0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * (self.count - 1) as f64;
        let lo = rank.floor() as u64;
        let hi = rank.ceil() as u64;
        let a = self.order_stat(lo);
        if hi == lo {
            return a;
        }
        let b = self.order_stat(hi);
        a + (b - a) * (rank - lo as f64)
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Iterates non-empty buckets as `(upper_bound, count)` pairs, in
    /// increasing bound order — the shape Prometheus bucket lines need.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_bounds(i).1, c))
    }
}

enum MetricHandle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A point-in-time copy of one registry entry.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Full histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// A named collection of metrics. Get-or-create returns `Arc` handles
/// so hot paths never touch the registry lock again; two calls with
/// the same name share storage.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, MetricHandle>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| MetricHandle::Counter(Arc::new(Counter::new())))
        {
            MetricHandle::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// Returns the gauge named `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| MetricHandle::Gauge(Arc::new(Gauge::new())))
        {
            MetricHandle::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// Returns the histogram named `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| MetricHandle::Histogram(Arc::new(Histogram::new())))
        {
            MetricHandle::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Registers an externally owned counter under `name`, replacing
    /// any previous entry. This is how pre-existing counter blocks
    /// (e.g. the storage engine's `IoStats`) surface in the registry
    /// without double-counting: both sides share the same atomic.
    pub fn register_counter(&self, name: &str, counter: Arc<Counter>) {
        self.metrics
            .lock()
            .unwrap()
            .insert(name.to_string(), MetricHandle::Counter(counter));
    }

    /// Takes a point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let m = self.metrics.lock().unwrap();
        RegistrySnapshot {
            metrics: m
                .iter()
                .map(|(name, h)| {
                    let v = match h {
                        MetricHandle::Counter(c) => MetricSnapshot::Counter(c.get()),
                        MetricHandle::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                        MetricHandle::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
                    };
                    (name.clone(), v)
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.metrics.lock().unwrap().len())
            .finish()
    }
}

/// A point-in-time copy of a whole [`Registry`], ordered by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Metric values keyed by registered name.
    pub metrics: BTreeMap<String, MetricSnapshot>,
}

impl RegistrySnapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricSnapshot::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.metrics.get(name) {
            Some(MetricSnapshot::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name) {
            Some(MetricSnapshot::Histogram(h)) => Some(h),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_index_is_contiguous_and_monotonic() {
        let mut prev = 0usize;
        for v in 0u64..100_000 {
            let i = bucket_index(v);
            assert!(i == prev || i == prev + 1, "gap at v={v}: {prev} -> {i}");
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v < hi, "v={v} not in [{lo},{hi}) (bucket {i})");
            prev = i;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn boundary_buckets_microsecond_millisecond_second() {
        // 1 µs, 1 ms, 1 s recorded as nanoseconds must land in the
        // expected log-scale buckets, and the bounds must bracket the
        // value tightly (≤ 12.5 % relative width).
        for v in [1_000u64, 1_000_000, 1_000_000_000] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v < hi);
            assert!((hi - lo) as f64 / lo as f64 <= 0.125 + 1e-12);
        }
        // Spot-check the derivation for 1 µs: msb=9, shift=6,
        // index = 6·8 + (1000 >> 6) = 63, bounds [960, 1024).
        assert_eq!(bucket_index(1_000), 63);
        assert_eq!(bucket_bounds(63), (960, 1024));
        // Exact powers of two start their own bucket.
        assert_eq!(bucket_bounds(bucket_index(1 << 20)).0, 1 << 20);
    }

    #[test]
    fn histogram_quantiles_track_exact_percentiles() {
        let h = Histogram::new();
        let mut vals: Vec<u64> = (0..1000u64).map(|i| i * i + 17).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.max, *vals.last().unwrap());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = q * (vals.len() - 1) as f64;
            let (lo, hi) = (rank.floor() as usize, rank.ceil() as usize);
            let exact = vals[lo] as f64 + (vals[hi] as f64 - vals[lo] as f64) * (rank - lo as f64);
            let est = snap.quantile(q);
            let tol = bucket_width(est.max(exact) as u64) as f64;
            assert!(
                (est - exact).abs() <= tol,
                "q={q}: est {est} vs exact {exact}, tol {tol}"
            );
        }
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50(), 0.0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..500u64 {
            let v = v * 7 + 3;
            if v % 2 == 0 { &a } else { &b }.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn registry_shares_handles_and_snapshots() {
        let r = Registry::new();
        let c1 = r.counter("ops_total");
        let c2 = r.counter("ops_total");
        c1.inc();
        c2.add(2);
        assert_eq!(r.snapshot().counter("ops_total"), Some(3));
        r.gauge("resident").set(-4);
        r.histogram("lat_ns").record(100);
        let snap = r.snapshot();
        assert_eq!(snap.gauge("resident"), Some(-4));
        assert_eq!(snap.histogram("lat_ns").unwrap().count, 1);
        assert_eq!(snap.counter("lat_ns"), None);
        // External registration shares the same atomic.
        let ext = Arc::new(Counter::new());
        ext.add(9);
        r.register_counter("external", Arc::clone(&ext));
        ext.inc();
        assert_eq!(r.snapshot().counter("external"), Some(10));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.gauge("x");
        r.counter("x");
    }
}
