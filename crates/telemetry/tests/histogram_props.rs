//! Property tests for histogram merge and bucketing correctness
//! (ISSUE 9 satellite): merged shard snapshots must report exactly
//! the quantiles of a single histogram fed the union, and every value
//! must land in the bucket whose bounds bracket it.

use micronn_telemetry::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, NUM_BUCKETS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn merged_shards_match_union(
        shards in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..128),
            1..6,
        ),
    ) {
        // Per-shard histograms, merged...
        let mut merged = HistogramSnapshot::empty();
        for shard in &shards {
            let h = Histogram::new();
            for &v in shard {
                h.record(v);
            }
            merged.merge(&h.snapshot());
        }
        // ...versus one histogram fed the union.
        let union = Histogram::new();
        for &v in shards.iter().flatten() {
            union.record(v);
        }
        let union = union.snapshot();
        // Bucket-wise addition makes this an exact equality, so every
        // derived quantile agrees too.
        prop_assert_eq!(&merged, &union);
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(merged.quantile(q).to_bits(), union.quantile(q).to_bits());
        }
    }

    #[test]
    fn every_value_lands_in_its_bracketing_bucket(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v, "v={} below bucket {} lower bound {}", v, i, lo);
        prop_assert!(v < hi || (v == u64::MAX && hi == u64::MAX),
            "v={} not below bucket {} upper bound {}", v, i, hi);
        // Quantile of a single-value histogram stays inside the bucket.
        let h = Histogram::new();
        h.record(v);
        let snap = h.snapshot();
        let q = snap.quantile(0.5);
        prop_assert!(q >= lo as f64 && q <= hi as f64);
        prop_assert_eq!(snap.max, v);
    }
}
